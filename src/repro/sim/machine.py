"""Machine state: flat memory and per-core stack allocators."""

import threading


class Memory:
    """Flat address-to-value storage shared by all simulated cores.

    Values live at their base addresses (element-granular); the address
    arithmetic uses real byte strides so layouts match the C types, but
    storage itself is a dict, which keeps the simulator simple and safe.
    Loads of never-written addresses return the segment default (0) —
    like the zeroed pages a real OS hands out.
    """

    __slots__ = ("_data", "_lock", "get", "put")

    def __init__(self):
        self._data = {}
        self._lock = threading.Lock()
        # pre-bound accessors for the compiled engine's hot path (one
        # attribute fetch instead of a method call per load/store)
        self.get = self._data.get
        self.put = self._data.__setitem__

    def load(self, addr, default=0):
        # dict reads are atomic under the GIL; no lock on the hot path
        return self._data.get(addr, default)

    def store(self, addr, value):
        self._data[addr] = value

    def memset(self, addr, value, count, stride):
        with self._lock:
            for index in range(count):
                self._data[addr + index * stride] = value

    def memcpy(self, dst, src, count, stride, default=0):
        with self._lock:
            for index in range(count):
                self._data[dst + index * stride] = self._data.get(
                    src + index * stride, default)

    def snapshot_range(self, addr, count, stride, default=0):
        return [self._data.get(addr + i * stride, default)
                for i in range(count)]

    def items(self):
        """Every written (address, value) pair, address-sorted — the
        checkpoint layer's full-state capture.  Only called at barrier
        quiesce points, where no simulated core is mid-store."""
        with self._lock:
            return sorted(self._data.items(), key=lambda kv: kv[0])

    def __len__(self):
        return len(self._data)


class StackAllocator:
    """Bump allocator for one core's call stack inside its private
    window.  Frames remember the stack pointer and restore it on exit
    so recursion does not leak address space."""

    __slots__ = ("base", "size", "sp")

    def __init__(self, base, size):
        self.base = base
        self.size = size
        self.sp = base

    def frame(self):
        return _StackFrame(self)

    def alloc(self, nbytes, alignment=8):
        nbytes = max((nbytes + alignment - 1) // alignment * alignment,
                     alignment)
        addr = self.sp
        self.sp += nbytes
        if self.sp > self.base + self.size:
            raise MemoryError("simulated stack overflow")
        return addr

    @property
    def used(self):
        return self.sp - self.base


class _StackFrame:
    """Context manager restoring the stack pointer."""

    __slots__ = ("allocator", "saved_sp")

    def __init__(self, allocator):
        self.allocator = allocator
        self.saved_sp = allocator.sp

    def __enter__(self):
        self.saved_sp = self.allocator.sp
        return self

    def __exit__(self, exc_type, exc, tb):
        self.allocator.sp = self.saved_sp
        return False
