"""Closure compilation of the C AST: the interpreter's fast engine.

The tree-walker (``repro.sim.interpreter``) re-dispatches on AST node
types for every step.  This module lowers each function body ONCE into
a tree of pre-bound Python closures: every statement/expression node
becomes a small function ``fn(I, F)`` (``I`` the interpreter, ``F`` the
flat frame of local-variable addresses), with

* dispatch resolved at compile time (no ``isinstance``/dict lookups on
  the hot path),
* lexical scoping resolved to integer frame slots,
* operation costs folded into pre-bound integer constants, and
* one **inline cache** per memory-access site: the site remembers the
  last resolved (window, cost-function) entry from
  :meth:`~repro.scc.chip.SCCChip.access_fastpath`, so repeated
  accesses to the same region skip the full address-space resolution.
  Invalidation is push-style: the chip clears every registered
  interpreter's site-cache dict whenever ``mem_epoch`` bumps (LUT
  reconfiguration, new split window), so a present entry is always
  valid and the hot path never checks an epoch stamp.

The contract is **trace exactness**: a compiled function performs the
same ``steps`` increments, the same ``cycles`` charges in the same
order, and the same chip/memory side effects as the tree-walker, so
cycle counts, stdout, metrics and trace events are byte-identical.
Anything the compiler cannot prove it can reproduce exactly falls back
to the tree-walker for that whole function (``CompiledFunction.body is
None``); constructs that the tree-walker only rejects at *execution*
time (``goto``, unknown nodes) compile to closures that raise the same
error when reached.

Known, documented divergences (invalid-C corner cases only): a
``break``/``continue`` that escapes its *function* (the tree-walker
lets the exception unwind into the caller's loop), and calls through a
``FunctionRef`` naming a variable rather than a function.
"""

import itertools
import threading
import weakref

from repro.cfront import c_ast, ctypes
from repro.sim.interpreter import (
    OP_COSTS,
    RETIRE_BATCH,
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
    _Break,
    _Continue,
    _Return,
)
from repro.sim.values import (
    NULL,
    FunctionRef,
    Pointer,
    coerce,
    default_value,
    pointer_for,
)

__all__ = ["BoundArg", "CompiledFunction", "CompiledUnit",
           "compile_unit", "invoke", "make_coercer",
           "warm_process_cache"]

# Pre-bound operation costs (the tree-walker reads OP_COSTS per charge;
# sourcing the constants from the same table keeps the engines aligned).
_C_IALU = OP_COSTS["int_alu"]
_C_IMUL = OP_COSTS["int_mul"]
_C_IDIV = OP_COSTS["int_div"]
_C_FALU = OP_COSTS["float_alu"]
_C_FMUL = OP_COSTS["float_mul"]
_C_FDIV = OP_COSTS["float_div"]
_C_BRANCH = OP_COSTS["branch"]
_C_CALL = OP_COSTS["call"]
_C_CAST = OP_COSTS["cast"]

_M = RETIRE_BATCH - 1          # step-batch mask, inlined in prologues
_ENV = Interpreter.ENV_CONSTANTS
_FLOAT_NAMES = ("float", "double", "long double")

_new_site = itertools.count(1).__next__


class _CompileFallback(Exception):
    """Raised at compile time when a function must run on the
    tree-walker to preserve exact semantics."""


class BoundArg:
    """A lazily-evaluable argument handed to builtins in compiled mode.

    Builtins receive ``(interp, arg_nodes)`` and call
    ``interp.eval_expr(node)`` per argument (possibly skipping some,
    e.g. ``fprintf``'s stream).  In compiled mode each node is one of
    these: evaluation runs the pre-compiled closure, preserving both
    laziness and charge order."""

    __slots__ = ("fn", "I", "F")

    def __init__(self, fn, I, F):
        self.fn = fn
        self.I = I
        self.F = F

    def __call__(self):
        return self.fn(self.I, self.F)


class CompiledFunction:
    """One function lowered to closures (or marked for tree fallback)."""

    __slots__ = ("name", "func", "nslots", "params", "body",
                 "ret_coerce", "fallback_reason")

    def __init__(self, func):
        self.name = func.name
        self.func = func
        self.nslots = 0
        self.params = ()
        self.body = None          # closure, or None => tree fallback
        self.ret_coerce = None
        self.fallback_reason = None


class CompiledUnit:
    """All compiled functions of one translation unit."""

    __slots__ = ("functions", "global_types", "__weakref__")

    def __init__(self):
        self.functions = {}
        self.global_types = {}

    def fallbacks(self):
        return {name: cf.fallback_reason
                for name, cf in self.functions.items()
                if cf.body is None}


_UNIT_CACHE = weakref.WeakKeyDictionary()
_UNIT_CACHE_LOCK = threading.Lock()


def compile_unit(unit):
    """Compile (and cache, keyed on the unit object) a translation
    unit.  Thread-safe: ``run_rcce`` cores share one compiled unit."""
    with _UNIT_CACHE_LOCK:
        cu = _UNIT_CACHE.get(unit)
        if cu is None:
            cu = _compile_unit(unit)
            _UNIT_CACHE[unit] = cu
        return cu


def warm_process_cache(source):
    """Parse + compile ``source`` once in *this* process and return the
    shared unit.  The parallel backend's worker processes call this at
    startup: both the sha256-keyed parse memo and the per-unit compile
    cache are per-process state, so warming them before the shard's
    rank threads start means every rank binds the same compiled unit
    instead of racing to build it."""
    from repro.cfront.frontend import parse_program
    unit = parse_program(source, share=True)
    compile_unit(unit)
    return unit


def _compile_unit(unit):
    cu = CompiledUnit()
    cu.global_types = {decl.name: decl.ctype
                       for decl in unit.global_decls()
                       if not decl.is_typedef}
    for func in unit.functions():          # last definition wins, like
        cu.functions[func.name] = CompiledFunction(func)   # Interpreter
    for cf in cu.functions.values():
        try:
            _FunctionCompiler(cu, cf).compile()
        except Exception as exc:  # noqa: BLE001 - fall back, stay exact
            cf.body = None
            cf.fallback_reason = "%s: %s" % (type(exc).__name__, exc)
    return cu


# ---------------------------------------------------------------------------
# runtime helpers (shared by the generated closures)
# ---------------------------------------------------------------------------

def _overflow(I):
    raise StepLimitExceeded(
        "exceeded %d interpreter steps on core %d"
        % (I.max_steps, I.core_id))


def _undefined(name):
    raise InterpreterError("undefined identifier %r" % name)


def _ld(I, addr, site):
    """Charged load through the per-site inline cache (no float
    conversion; callers apply their statically-known conversion)."""
    e = I._site_cache.get(site)
    if e is None or not e[0] <= addr < e[1]:
        e = I._fill_site(site, addr)
    I.cycles += e[2](addr, "read", I.cycles)
    if I.tracer is not None:
        I.tracer.record(I, addr, "read")
    if I._race is not None:
        I._race.record(I, addr, "read")
    return I._mem_get(addr, 0)


def _st(I, addr, value, site, co):
    """Charged store through the per-site inline cache; ``co`` is the
    pre-built coercer for the target's C type (or None)."""
    e = I._site_cache.get(site)
    if e is None or not e[0] <= addr < e[1]:
        e = I._fill_site(site, addr)
    I.cycles += e[2](addr, "write", I.cycles)
    if I.tracer is not None:
        I.tracer.record(I, addr, "write")
    if I._race is not None:
        I._race.record(I, addr, "write")
    if co is not None:
        value = co(value)
    I._mem_set(addr, value)
    return value


def _st_dyn(I, addr, value, site, ct):
    """Charged store where the target C type is only known at run time
    (pointer dereference, dynamic subscripts, member access)."""
    e = I._site_cache.get(site)
    if e is None or not e[0] <= addr < e[1]:
        e = I._fill_site(site, addr)
    I.cycles += e[2](addr, "write", I.cycles)
    if I.tracer is not None:
        I.tracer.record(I, addr, "write")
    if I._race is not None:
        I._race.record(I, addr, "write")
    value = coerce(ct, value)
    I._mem_set(addr, value)
    return value


def _flt_load_conv(value, ct):
    """The tree-walker's load conversion for a runtime-known type."""
    if isinstance(value, int) and ct.__class__ is ctypes.PrimitiveType \
            and ct.name in _FLOAT_NAMES:
        return float(value)
    return value


def invoke(I, cf, args):
    """Execute a compiled function call: the closure engine's
    counterpart of ``Interpreter._call_function_tree``."""
    body = cf.body
    if body is None:
        return I._call_function_tree(cf.name, args)
    I.cycles += _C_CALL
    saved_function = I.current_function
    I.current_function = cf.name
    stack = I.stack
    saved_sp = stack.sp
    F = [0] * cf.nslots
    try:
        if args:
            tracer = I.tracer
            mem_set = I._mem_set
            for spec, value in zip(cf.params, args):
                slot = spec[0]
                if slot is None:
                    continue  # unnamed parameter: consumes the arg
                addr = stack.alloc(spec[2])
                F[slot] = addr
                if tracer is not None:
                    tracer.register(spec[3], addr, spec[2], "local",
                                    cf.name)
                if I._race is not None:
                    I._race.register(spec[3], addr, spec[2], "local",
                                     cf.name)
                mem_set(addr, spec[1](value))
        try:
            body(I, F)
        except _Return as ret:
            if ret.value is not None:
                return cf.ret_coerce(ret.value)
            return None
        return None
    finally:
        stack.sp = saved_sp
        I.current_function = saved_function


# ---------------------------------------------------------------------------
# coercion specialization (mirrors repro.sim.values.coerce exactly)
# ---------------------------------------------------------------------------

def make_coercer(ct):
    """A specialized ``lambda value: coerce(ct, value)`` with the type
    dispatch done once, at compile time."""
    if isinstance(ct, ctypes.PrimitiveType):
        if ct.is_floating:
            def co_float(value):
                if value.__class__ is Pointer:
                    return float(value.addr)
                if value is None:
                    return 0.0
                return float(value)
            return co_float
        if ct.is_integral:
            size = ct.sizeof() or 4
            bits = {1: 8, 2: 16, 4: 32, 8: 64}.get(size, 32)
            mask = (1 << bits) - 1
            half = 1 << (bits - 1)
            wrap = 1 << bits
            signed = not ct.name.startswith("unsigned")

            def co_int(value):
                cls = value.__class__
                if cls is int:
                    value &= mask
                elif cls is Pointer:
                    return value.addr
                elif cls is FunctionRef:
                    return value
                elif value is None:
                    return 0
                else:
                    value = int(value) & mask
                if signed and value >= half:
                    return value - wrap
                return value
            return co_int

        def co_void(value):       # void: coerce() passes values through
            if value is None:
                return 0
            return value
        return co_void
    if isinstance(ct, (ctypes.PointerType, ctypes.ArrayType)):
        pointee = ctypes.pointee(ct)
        restride = pointee is not None and not pointee.is_void
        pstride = (pointee.sizeof() or 1) if pointee is not None else 1

        def co_ptr(value):
            cls = value.__class__
            if cls is Pointer:
                if restride:
                    return Pointer(value.addr, pstride, pointee)
                return value
            if cls is FunctionRef:
                return value
            if cls is int or cls is float:
                return Pointer(int(value), pstride, pointee)
            if value is None:
                return NULL
            if isinstance(value, (int, float)):   # bool, int subclasses
                return Pointer(int(value), pstride, pointee)
            return value
        return co_ptr

    def co_generic(value):        # NamedType, StructType, FunctionType…
        return coerce(ct, value)
    return co_generic


def _static_flt(ct):
    """Does a load at this statically-typed site convert int->float?"""
    return isinstance(ct, ctypes.PrimitiveType) and \
        ct.name in _FLOAT_NAMES


# ---------------------------------------------------------------------------
# compile-time constant evaluation (switch case labels)
# ---------------------------------------------------------------------------

def _const_value(expr):
    """Pure mirror of ``Interpreter._const_expr`` (no cycle charges)."""
    if isinstance(expr, c_ast.Constant):
        return expr.value
    if isinstance(expr, c_ast.UnaryOp) and expr.op == "-":
        return -_const_value(expr.operand)
    if isinstance(expr, c_ast.StringLiteral):
        return expr.value
    if isinstance(expr, c_ast.Cast):
        return coerce(expr.ctype, _const_value(expr.expr))
    if isinstance(expr, c_ast.SizeofType):
        return expr.ctype.sizeof()
    if isinstance(expr, c_ast.BinaryOp):
        return _pure_binop(expr.op, _const_value(expr.left),
                           _const_value(expr.right))
    raise InterpreterError("unsupported constant initializer: %r" % expr)


def _pure_binop(op, left, right):
    """``Interpreter._apply_binop(op, left, right, charge=False)``
    without an interpreter (used only at compile time)."""
    import math
    if isinstance(left, Pointer) or isinstance(right, Pointer):
        if op == "+":
            return left.offset(int(right)) if isinstance(left, Pointer) \
                else right.offset(int(left))
        if op == "-":
            if isinstance(left, Pointer) and isinstance(right, Pointer):
                return (left.addr - right.addr) // left.stride
            if isinstance(left, Pointer):
                return left.offset(-int(right))
            raise InterpreterError("cannot subtract pointer from int")
        lk = left.addr if isinstance(left, Pointer) else left
        rk = right.addr if isinstance(right, Pointer) else right
        cmps = {"==": lk == rk, "!=": lk != rk, "<": lk < rk,
                ">": lk > rk, "<=": lk <= rk, ">=": lk >= rk}
        if op in cmps:
            return 1 if cmps[op] else 0
        raise InterpreterError("unsupported pointer operator %r" % op)
    is_float = isinstance(left, float) or isinstance(right, float)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise InterpreterError("division by zero")
        if is_float:
            return left / right
        quotient = abs(left) // abs(right)
        return quotient if (left < 0) == (right < 0) else -quotient
    if op == "%":
        if right == 0:
            raise InterpreterError("modulo by zero")
        if is_float:
            return math.fmod(left, right)
        remainder = abs(left) % abs(right)
        return remainder if left >= 0 else -remainder
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "&":
        return int(left) & int(right)
    if op == "|":
        return int(left) | int(right)
    if op == "^":
        return int(left) ^ int(right)
    if op == "<<":
        return int(left) << int(right)
    if op == ">>":
        return int(left) >> int(right)
    raise InterpreterError("unsupported binary operator %r" % op)


# ---------------------------------------------------------------------------
# break/continue escape analysis (syntactic; calls do not count)
# ---------------------------------------------------------------------------

def _can_escape(stmt, want_break):
    """Can executing ``stmt`` raise _Break (or _Continue) out of it?"""
    cls = stmt.__class__
    if want_break:
        if cls is c_ast.Break:
            return True
        if cls is c_ast.Switch:        # switch catches break
            return False
    else:
        if cls is c_ast.Continue:
            return True
        if cls is c_ast.Switch:        # …but not continue
            return any(_can_escape(inner, want_break)
                       for item in getattr(stmt.body, "items", ())
                       if isinstance(item, (c_ast.Case, c_ast.Default))
                       for inner in item.stmts)
    if cls in (c_ast.While, c_ast.DoWhile, c_ast.For):
        return False                   # loops catch both
    if cls is c_ast.Compound:
        return any(_can_escape(item, want_break) for item in stmt.items)
    if cls is c_ast.If:
        if _can_escape(stmt.then, want_break):
            return True
        return stmt.els is not None and _can_escape(stmt.els, want_break)
    if cls is c_ast.Label:
        return _can_escape(stmt.stmt, want_break)
    if cls in (c_ast.Case, c_ast.Default):
        return any(_can_escape(inner, want_break) for inner in stmt.stmts)
    return False


# ---------------------------------------------------------------------------
# closure builders — statements
#
# Every builder inlines the step prologue the tree-walker performs in
# exec_stmt/eval_expr/_step:
#     steps += 1; check limit; flush the retire batch every RETIRE_BATCH.
# ---------------------------------------------------------------------------

def _make_seq(items):
    n = len(items)
    if n == 0:
        def run0(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
        return run0
    if n == 1:
        c0, = items

        def run1(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            c0(I, F)
        return run1
    if n == 2:
        c0, c1 = items

        def run2(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            c0(I, F)
            c1(I, F)
        return run2

    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        for c in items:
            c(I, F)
    return run


def _make_raise_stmt(message):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        raise InterpreterError(message)
    return run


def _make_exprstmt(expr_c):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        expr_c(I, F)
    return run


def _make_if(cond_c, then_c, else_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        I.cycles += _C_BRANCH
        v = cond_c(I, F)
        if v.__class__ is _P:
            v = v.addr != 0
        if v:
            then_c(I, F)
        elif else_c is not None:
            else_c(I, F)
    return run


def _make_while(cond_c, body_c, protect):
    if protect:
        def run(I, F, _ovf=_overflow, _P=Pointer):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            while True:
                s = I.steps + 1
                I.steps = s
                if s > I.max_steps:
                    _ovf(I)
                if not s & _M:
                    I._batch_tick()
                I.cycles += _C_BRANCH
                v = cond_c(I, F)
                if v.__class__ is _P:
                    v = v.addr != 0
                if not v:
                    break
                try:
                    body_c(I, F)
                except _Break:
                    break
                except _Continue:
                    continue
        return run

    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        while True:
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            I.cycles += _C_BRANCH
            v = cond_c(I, F)
            if v.__class__ is _P:
                v = v.addr != 0
            if not v:
                break
            body_c(I, F)
    return run


def _make_dowhile(body_c, cond_c, protect):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        while True:
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            if protect:
                try:
                    body_c(I, F)
                except _Break:
                    break
                except _Continue:
                    pass
            else:
                body_c(I, F)
            I.cycles += _C_BRANCH
            v = cond_c(I, F)
            if v.__class__ is _P:
                v = v.addr != 0
            if not v:
                break
    return run


def _make_for(init_c, cond_c, step_c, body_c, protect):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        if init_c is not None:
            init_c(I, F)
        while True:
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            if cond_c is not None:
                I.cycles += _C_BRANCH
                v = cond_c(I, F)
                if v.__class__ is _P:
                    v = v.addr != 0
                if not v:
                    break
            if protect:
                try:
                    body_c(I, F)
                except _Break:
                    break
                except _Continue:
                    pass
            else:
                body_c(I, F)
            if step_c is not None:
                step_c(I, F)
    return run


def _make_return(expr_c):
    if expr_c is None:
        def run_void(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            raise _Return(None)
        return run_void

    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        raise _Return(expr_c(I, F))
    return run


def _make_break():
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        raise _Break()
    return run


def _make_continue():
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        raise _Continue()
    return run


def _make_switch(cond_c, groups):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        I.cycles += _C_BRANCH
        value = cond_c(I, F)
        matched = False
        try:
            for is_default, marker, stmts in groups:
                if not matched:
                    if is_default or marker == value:
                        matched = True
                if matched:
                    for c in stmts:
                        c(I, F)
        except _Break:
            pass
    return run


def _make_decl_plain(slot, name, size):
    def run(I, F):
        addr = I.stack.alloc(size)
        F[slot] = addr
        if I.tracer is not None:
            I.tracer.register(name, addr, size, "local",
                              I.current_function)
        if I._race is not None:
            I._race.register(name, addr, size, "local",
                             I.current_function)
    return run


def _make_decl_scalar(slot, name, size, init_c, co, site):
    def run(I, F):
        addr = I.stack.alloc(size)
        F[slot] = addr
        if I.tracer is not None:
            I.tracer.register(name, addr, size, "local",
                              I.current_function)
        if I._race is not None:
            I._race.register(name, addr, size, "local",
                             I.current_function)
        _st(I, addr, init_c(I, F), site, co)
    return run


def _make_decl_array(slot, name, size, init_cs, length, stride, dv, co,
                     site):
    n = len(init_cs)

    def run(I, F):
        addr = I.stack.alloc(size)
        F[slot] = addr
        if I.tracer is not None:
            I.tracer.register(name, addr, size, "local",
                              I.current_function)
        if I._race is not None:
            I._race.register(name, addr, size, "local",
                             I.current_function)
        values = [c(I, F) for c in init_cs]
        for k in range(length):
            _st(I, addr + k * stride, values[k] if k < n else dv,
                site, co)
    return run


# ---------------------------------------------------------------------------
# closure builders — expressions
# ---------------------------------------------------------------------------

def _make_const(value):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        return value
    return run


def _make_raise_expr(message):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        raise InterpreterError(message)
    return run


def _make_id_late(name):
    """Identifier unresolvable at compile time: builtin FunctionRef or
    environment constant, decided at run time (builtins depend on the
    attached runtime)."""
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        if name in I.builtins:
            return FunctionRef(name)
        if name in _ENV:
            return _ENV[name]
        raise InterpreterError("undefined identifier %r" % name)
    return run


def _make_id_load_local(slot, name, flt, site):
    if flt:
        def run_f(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            addr = F[slot]
            if not addr:
                _undefined(name)
            e = I._site_cache.get(site)
            if e is None or not e[0] <= addr < e[1]:
                e = I._fill_site(site, addr)
            I.cycles += e[2](addr, "read", I.cycles)
            if I.tracer is not None:
                I.tracer.record(I, addr, "read")
            if I._race is not None:
                I._race.record(I, addr, "read")
            v = I._mem_get(addr, 0)
            if isinstance(v, int):
                return float(v)
            return v
        return run_f

    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr = F[slot]
        if not addr:
            _undefined(name)
        e = I._site_cache.get(site)
        if e is None or not e[0] <= addr < e[1]:
            e = I._fill_site(site, addr)
        I.cycles += e[2](addr, "read", I.cycles)
        if I.tracer is not None:
            I.tracer.record(I, addr, "read")
        if I._race is not None:
            I._race.record(I, addr, "read")
        return I._mem_get(addr, 0)
    return run


def _make_id_load_global(name, flt, site):
    if flt:
        def run_f(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            addr = I._global_addr[name]
            e = I._site_cache.get(site)
            if e is None or not e[0] <= addr < e[1]:
                e = I._fill_site(site, addr)
            I.cycles += e[2](addr, "read", I.cycles)
            if I.tracer is not None:
                I.tracer.record(I, addr, "read")
            if I._race is not None:
                I._race.record(I, addr, "read")
            v = I._mem_get(addr, 0)
            if isinstance(v, int):
                return float(v)
            return v
        return run_f

    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr = I._global_addr[name]
        e = I._site_cache.get(site)
        if e is None or not e[0] <= addr < e[1]:
            e = I._fill_site(site, addr)
        I.cycles += e[2](addr, "read", I.cycles)
        if I.tracer is not None:
            I.tracer.record(I, addr, "read")
        if I._race is not None:
            I._race.record(I, addr, "read")
        return I._mem_get(addr, 0)
    return run


def _make_id_decay_local(slot, name, stride, pointee):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr = F[slot]
        if not addr:
            _undefined(name)
        return _P(addr, stride, pointee)
    return run


def _make_id_decay_global(name, stride, pointee):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        return _P(I._global_addr[name], stride, pointee)
    return run


def _make_land(left_c, right_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        I.cycles += _C_BRANCH
        v = left_c(I, F)
        if v.__class__ is _P:
            v = v.addr != 0
        if not v:
            return 0
        v = right_c(I, F)
        if v.__class__ is _P:
            v = v.addr != 0
        return 1 if v else 0
    return run


def _make_lor(left_c, right_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        I.cycles += _C_BRANCH
        v = left_c(I, F)
        if v.__class__ is _P:
            v = v.addr != 0
        if v:
            return 1
        v = right_c(I, F)
        if v.__class__ is _P:
            v = v.addr != 0
        return 1 if v else 0
    return run


def _make_add(left_c, right_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        a = left_c(I, F)
        b = right_c(I, F)
        ca = a.__class__
        cb = b.__class__
        if ca is _P or cb is _P:
            I.cycles += _C_IALU
            if ca is _P:
                return _P(a.addr + int(b) * a.stride, a.stride,
                          a.pointee)
            return _P(b.addr + int(a) * b.stride, b.stride, b.pointee)
        if ca is float or cb is float:
            I.cycles += _C_FALU
        else:
            I.cycles += _C_IALU
        return a + b
    return run


def _make_sub(left_c, right_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        a = left_c(I, F)
        b = right_c(I, F)
        ca = a.__class__
        cb = b.__class__
        if ca is _P or cb is _P:
            I.cycles += _C_IALU
            if ca is _P and cb is _P:
                return (a.addr - b.addr) // a.stride
            if ca is _P:
                return _P(a.addr - int(b) * a.stride, a.stride,
                          a.pointee)
            raise InterpreterError("cannot subtract pointer from int")
        if ca is float or cb is float:
            I.cycles += _C_FALU
        else:
            I.cycles += _C_IALU
        return a - b
    return run


def _make_mul(left_c, right_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        a = left_c(I, F)
        b = right_c(I, F)
        ca = a.__class__
        cb = b.__class__
        if ca is _P or cb is _P:
            return I._pointer_binop("*", a, b, True)
        if ca is float or cb is float:
            I.cycles += _C_FMUL
        else:
            I.cycles += _C_IMUL
        return a * b
    return run


def _make_div(left_c, right_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        a = left_c(I, F)
        b = right_c(I, F)
        ca = a.__class__
        cb = b.__class__
        if ca is _P or cb is _P:
            return I._pointer_binop("/", a, b, True)
        if ca is float or cb is float:
            I.cycles += _C_FDIV
            if b == 0:
                raise InterpreterError("division by zero")
            return a / b
        I.cycles += _C_IDIV
        if b == 0:
            raise InterpreterError("division by zero")
        quotient = abs(a) // abs(b)
        return quotient if (a < 0) == (b < 0) else -quotient
    return run


def _make_mod(left_c, right_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        a = left_c(I, F)
        b = right_c(I, F)
        ca = a.__class__
        cb = b.__class__
        if ca is _P or cb is _P:
            return I._pointer_binop("%", a, b, True)
        if ca is float or cb is float:
            I.cycles += _C_FDIV
            if b == 0:
                raise InterpreterError("modulo by zero")
            import math
            return math.fmod(a, b)
        I.cycles += _C_IDIV
        if b == 0:
            raise InterpreterError("modulo by zero")
        remainder = abs(a) % abs(b)
        return remainder if a >= 0 else -remainder
    return run


def _make_cmp(left_c, right_c, cmp):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        a = left_c(I, F)
        b = right_c(I, F)
        ca = a.__class__
        cb = b.__class__
        if ca is _P or cb is _P:
            I.cycles += _C_IALU
            return 1 if cmp(a.addr if ca is _P else a,
                            b.addr if cb is _P else b) else 0
        if ca is float or cb is float:
            I.cycles += _C_FALU
        else:
            I.cycles += _C_IALU
        return 1 if cmp(a, b) else 0
    return run


def _make_intop(op, left_c, right_c, fn):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        a = left_c(I, F)
        b = right_c(I, F)
        if a.__class__ is _P or b.__class__ is _P:
            return I._pointer_binop(op, a, b, True)
        if a.__class__ is float or b.__class__ is float:
            I.cycles += _C_FALU
        else:
            I.cycles += _C_IALU
        return fn(a, b)
    return run


def _make_binop_generic(op, left_c, right_c):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        return I._apply_binop(op, left_c(I, F), right_c(I, F),
                              charge=True)
    return run


import operator as _op  # noqa: E402  (local helper table below)

_CMP_FNS = {"<": _op.lt, ">": _op.gt, "<=": _op.le, ">=": _op.ge,
            "==": _op.eq, "!=": _op.ne}
_INT_FNS = {
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
}


def _make_ternary(cond_c, then_c, else_c):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        I.cycles += _C_BRANCH
        v = cond_c(I, F)
        if v.__class__ is _P:
            v = v.addr != 0
        if v:
            return then_c(I, F)
        return else_c(I, F)
    return run


def _make_comma(item_cs):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        value = None
        for c in item_cs:
            value = c(I, F)
        return value
    return run


def _make_cast(inner_c, co):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        v = inner_c(I, F)
        I.cycles += _C_CAST
        return co(v)
    return run


def _make_addrof(lv, ct):
    stride = ct.sizeof() or 4

    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        return _P(lv(I, F), stride, ct)
    return run


def _make_addrof_dyn(lv):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr, ct = lv(I, F)
        return _P(addr, ct.sizeof() or 4, ct)
    return run


def _make_deref(operand_c, site):
    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        p = operand_c(I, F)
        if p.__class__ is not _P:
            raise InterpreterError("dereference of non-pointer")
        addr = p.addr
        if addr == 0:
            raise InterpreterError("NULL pointer dereference")
        v = _ld(I, addr, site)
        if isinstance(v, int):
            pe = p.pointee
            if pe is not None and pe.__class__ is ctypes.PrimitiveType \
                    and pe.name in _FLOAT_NAMES:
                return float(v)
        return v
    return run


def _make_incdec(lv, ct, delta, postfix):
    """++x / --x / x++ / x-- with a statically-typed lvalue."""
    flt = _static_flt(ct)
    co = make_coercer(ct)
    site_r = _new_site()
    site_w = _new_site()

    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr = lv(I, F)
        old = _ld(I, addr, site_r)
        if flt and isinstance(old, int):
            old = float(old)
        I.cycles += _C_IALU
        if old.__class__ is _P:
            new = _P(old.addr + delta * old.stride, old.stride,
                     old.pointee)
        else:
            new = old + delta
        _st(I, addr, new, site_w, co)
        return old if postfix else new
    return run


def _make_incdec_dyn(lv, delta, postfix):
    site_r = _new_site()
    site_w = _new_site()

    def run(I, F, _ovf=_overflow, _P=Pointer):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr, ct = lv(I, F)
        old = _flt_load_conv(_ld(I, addr, site_r), ct)
        I.cycles += _C_IALU
        if old.__class__ is _P:
            new = _P(old.addr + delta * old.stride, old.stride,
                     old.pointee)
        else:
            new = old + delta
        _st_dyn(I, addr, new, site_w, ct)
        return old if postfix else new
    return run


def _make_unary_simple(op, operand_c):
    if op == "-":
        def run_neg(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            v = operand_c(I, F)
            I.cycles += _C_IALU
            return -v
        return run_neg
    if op == "+":
        def run_pos(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            v = operand_c(I, F)
            I.cycles += _C_IALU
            return v
        return run_pos
    if op == "!":
        def run_not(I, F, _ovf=_overflow, _P=Pointer):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            v = operand_c(I, F)
            I.cycles += _C_IALU
            if v.__class__ is _P:
                v = v.addr != 0
            return 0 if v else 1
        return run_not
    if op == "~":
        def run_inv(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            v = operand_c(I, F)
            I.cycles += _C_IALU
            return ~int(v)
        return run_inv

    def run(I, F, _ovf=_overflow):   # unknown unary: mirror the tree
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        operand_c(I, F)
        I.cycles += _C_IALU
        raise InterpreterError("unsupported unary operator %r" % op)
    return run


def _make_assign_static(lv, rhs_c, co, site):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr = lv(I, F)
        v = rhs_c(I, F)
        e = I._site_cache.get(site)
        if e is None or not e[0] <= addr < e[1]:
            e = I._fill_site(site, addr)
        I.cycles += e[2](addr, "write", I.cycles)
        if I.tracer is not None:
            I.tracer.record(I, addr, "write")
        if I._race is not None:
            I._race.record(I, addr, "write")
        v = co(v)
        I._mem_set(addr, v)
        return v
    return run


def _make_augassign_static(lv, rhs_c, subop, ct):
    flt = _static_flt(ct)
    co = make_coercer(ct)
    site_r = _new_site()
    site_w = _new_site()

    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr = lv(I, F)
        old = _ld(I, addr, site_r)
        if flt and isinstance(old, int):
            old = float(old)
        rhs = rhs_c(I, F)
        v = I._apply_binop(subop, old, rhs, charge=True)
        return _st(I, addr, v, site_w, co)
    return run


def _make_assign_dyn(lv, rhs_c, site):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr, ct = lv(I, F)
        return _st_dyn(I, addr, rhs_c(I, F), site, ct)
    return run


def _make_augassign_dyn(lv, rhs_c, subop):
    site_r = _new_site()
    site_w = _new_site()

    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr, ct = lv(I, F)
        old = _flt_load_conv(_ld(I, addr, site_r), ct)
        rhs = rhs_c(I, F)
        v = I._apply_binop(subop, old, rhs, charge=True)
        return _st_dyn(I, addr, v, site_w, ct)
    return run


def _make_lvalue_load(lv, ct):
    """Rvalue use of ArrayRef / MemberRef: resolve, then decay or
    load, mirroring _eval_arrayref/_eval_memberref."""
    if ct is not None:
        if isinstance(ct, ctypes.ArrayType):
            pe = ctypes.pointee(ct)
            stride = (pe.sizeof() or 4) if pe is not None else 4

            def run_decay(I, F, _ovf=_overflow, _P=Pointer):
                s = I.steps + 1
                I.steps = s
                if s > I.max_steps:
                    _ovf(I)
                if not s & _M:
                    I._batch_tick()
                return _P(lv(I, F), stride, pe)
            return run_decay
        flt = _static_flt(ct)
        site = _new_site()
        if flt:
            def run_f(I, F, _ovf=_overflow):
                s = I.steps + 1
                I.steps = s
                if s > I.max_steps:
                    _ovf(I)
                if not s & _M:
                    I._batch_tick()
                v = _ld(I, lv(I, F), site)
                if isinstance(v, int):
                    return float(v)
                return v
            return run_f

        def run(I, F, _ovf=_overflow):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            return _ld(I, lv(I, F), site)
        return run

    site = _new_site()

    def run_dyn(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr, ct2 = lv(I, F)
        if isinstance(ct2, ctypes.ArrayType):
            return pointer_for(ct2, addr)
        return _flt_load_conv(_ld(I, addr, site), ct2)
    return run_dyn


def _make_call_static(cf, arg_cs):
    n = len(arg_cs)
    if n == 0:
        def run0(I, F, _ovf=_overflow, _inv=invoke):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            return _inv(I, cf, ())
        return run0
    if n == 1:
        a0, = arg_cs

        def run1(I, F, _ovf=_overflow, _inv=invoke):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            return _inv(I, cf, (a0(I, F),))
        return run1
    if n == 2:
        a0, a1 = arg_cs

        def run2(I, F, _ovf=_overflow, _inv=invoke):
            s = I.steps + 1
            I.steps = s
            if s > I.max_steps:
                _ovf(I)
            if not s & _M:
                I._batch_tick()
            v0 = a0(I, F)
            return _inv(I, cf, (v0, a1(I, F)))
        return run2

    def run(I, F, _ovf=_overflow, _inv=invoke):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        return _inv(I, cf, [c(I, F) for c in arg_cs])
    return run


def _make_call_named(name, arg_cs, binding):
    """Call of a statically-known name that is NOT a unit function:
    usually a builtin, possibly a variable holding a function pointer
    (the tree-walker's fallback; ``binding`` is its lexical spec)."""
    def run(I, F, _ovf=_overflow, _inv=invoke, _BA=BoundArg,
            _FR=FunctionRef):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        name2 = name
        if name2 not in I.builtins:
            if binding is not None:
                kind, where, flt, site = binding
                addr = F[where] if kind == "local" \
                    else I._global_addr[where]
                if addr:
                    v = _ld(I, addr, site)
                    if flt and isinstance(v, int):
                        v = float(v)
                    if v.__class__ is _FR:
                        name2 = v.name
            if name2 is not name:
                cf = I._compiled.functions.get(name2)
                if cf is not None:
                    return _inv(I, cf, [c(I, F) for c in arg_cs])
        b = I.builtins.get(name2)
        if b is None:
            raise InterpreterError("call to unknown function %r"
                                   % name2)
        return b(I, [_BA(c, I, F) for c in arg_cs])
    return run


def _make_call_indirect(func_c, arg_cs):
    def run(I, F, _ovf=_overflow, _inv=invoke, _BA=BoundArg,
            _FR=FunctionRef):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        target = func_c(I, F)
        if target.__class__ is not _FR:
            raise InterpreterError("call through non-function value")
        name = target.name
        cf = I._compiled.functions.get(name)
        if cf is not None:
            return _inv(I, cf, [c(I, F) for c in arg_cs])
        b = I.builtins.get(name)
        if b is None:
            raise InterpreterError("call to unknown function %r" % name)
        return b(I, [_BA(c, I, F) for c in arg_cs])
    return run


def _make_sizeof_local(slot, size):
    def run(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        return size if F[slot] else 4
    return run


# ---------------------------------------------------------------------------
# lvalue builders (no step of their own, like resolve_lvalue)
# ---------------------------------------------------------------------------

def _make_lv_local(slot, name):
    def lv(I, F):
        addr = F[slot]
        if not addr:
            _undefined(name)
        return addr
    return lv


def _make_lv_global(name):
    def lv(I, F):
        return I._global_addr[name]
    return lv


def _make_lv_raise(message):
    def lv(I, F):
        raise InterpreterError(message)
    return lv


def _make_lv_deref(operand_c):
    def lv(I, F, _P=Pointer, _INT=ctypes.INT):
        p = operand_c(I, F)
        if p.__class__ is not _P:
            raise InterpreterError("dereference of non-pointer")
        return p.addr, (p.pointee or _INT)
    return lv


def _make_lv_array_static_local(slot, name, index_c, stride):
    def lv(I, F, _ovf=_overflow):
        s = I.steps + 1              # the base Id's evaluation step
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr = F[slot]
        if not addr:
            _undefined(name)
        i = index_c(I, F)
        I.cycles += _C_IALU          # address computation
        return addr + int(i) * stride
    return lv


def _make_lv_array_static_global(name, index_c, stride):
    def lv(I, F, _ovf=_overflow):
        s = I.steps + 1
        I.steps = s
        if s > I.max_steps:
            _ovf(I)
        if not s & _M:
            I._batch_tick()
        addr = I._global_addr[name]
        i = index_c(I, F)
        I.cycles += _C_IALU
        return addr + int(i) * stride
    return lv


def _make_lv_array_dyn(base_c, index_c):
    def lv(I, F, _P=Pointer, _INT=ctypes.INT):
        b = base_c(I, F)
        i = index_c(I, F)
        if b.__class__ is not _P:
            raise InterpreterError("subscript of non-pointer")
        I.cycles += _C_IALU
        return b.addr + int(i) * b.stride, (b.pointee or _INT)
    return lv


def _make_lv_member_offset(inner_lv, offset):
    def lv(I, F):
        return inner_lv(I, F) + offset
    return lv


def _make_lv_member_nonstruct(inner_lv, paired):
    def lv(I, F):
        inner_lv(I, F)
        raise InterpreterError("member access on non-struct")
    return lv


def _make_lv_member_arrow(base_c, member):
    def lv(I, F, _P=Pointer):
        p = base_c(I, F)
        if p.__class__ is not _P:
            raise InterpreterError("-> on non-pointer")
        struct = ctypes.strip_arrays(p.pointee)
        if not isinstance(struct, ctypes.StructType):
            raise InterpreterError("member access on non-struct")
        return (p.addr + struct.field_offset(member),
                struct.field_type(member))
    return lv


def _make_lv_member_dyn(inner_lv, member):
    def lv(I, F):
        addr, ct = inner_lv(I, F)
        struct = ctypes.strip_arrays(ct)
        if not isinstance(struct, ctypes.StructType):
            raise InterpreterError("member access on non-struct")
        return (addr + struct.field_offset(member),
                struct.field_type(member))
    return lv


# ---------------------------------------------------------------------------
# the per-function compiler
# ---------------------------------------------------------------------------

class _FunctionCompiler:
    """Lowers one FuncDef into closures with compile-time scoping."""

    def __init__(self, cu, cf):
        self.cu = cu
        self.cf = cf
        self.nslots = 0
        self.scopes = [{}]

    # -- compile-time scoping ------------------------------------------------

    def declare(self, name, ct):
        slot = self.nslots
        self.nslots += 1
        self.scopes[-1][name] = (slot, ct)
        return slot

    def resolve(self, name):
        for scope in reversed(self.scopes):
            entry = scope.get(name)
            if entry is not None:
                return ("local", entry[0], entry[1])
        ct = self.cu.global_types.get(name)
        if ct is not None:
            return ("global", name, ct)
        return None

    # -- entry ---------------------------------------------------------------

    def compile(self):
        func = self.cf.func
        params = []
        for param in func.params:
            if param.name is None:
                params.append((None, None, 0, None))
            else:
                slot = self.declare(param.name, param.ctype)
                params.append((slot, make_coercer(param.ctype),
                               max(param.ctype.sizeof(), 4),
                               param.name))
        body = self.compile_stmt(func.body)
        cf = self.cf
        cf.params = tuple(params)
        cf.ret_coerce = make_coercer(func.return_type)
        cf.nslots = self.nslots
        cf.body = body        # set last: non-None marks "compiled"

    # -- statements ----------------------------------------------------------

    def compile_stmt(self, stmt):
        method = self._STMT.get(stmt.__class__)
        if method is None:
            return _make_raise_stmt("cannot execute %s"
                                    % type(stmt).__name__)
        return method(self, stmt)

    def _c_compound(self, stmt):
        self.scopes.append({})
        try:
            items = tuple(self.compile_stmt(item) for item in stmt.items)
        finally:
            self.scopes.pop()
        return _make_seq(items)

    def _c_declstmt(self, stmt):
        actions = []
        for decl in stmt.decls:
            if decl.is_typedef:
                continue
            slot = self.declare(decl.name, decl.ctype)
            size = max(decl.ctype.sizeof(), 4)
            if isinstance(decl.ctype, ctypes.ArrayType):
                if isinstance(decl.init, c_ast.InitList):
                    element = decl.ctype.base
                    init_cs = tuple(self.compile_expr(e)
                                    for e in decl.init.exprs)
                    actions.append(_make_decl_array(
                        slot, decl.name, size, init_cs,
                        decl.ctype.length or len(init_cs),
                        element.sizeof() or 4, default_value(element),
                        make_coercer(element), _new_site()))
                else:
                    actions.append(_make_decl_plain(slot, decl.name,
                                                    size))
            elif decl.init is not None:
                actions.append(_make_decl_scalar(
                    slot, decl.name, size, self.compile_expr(decl.init),
                    make_coercer(decl.ctype), _new_site()))
            else:
                actions.append(_make_decl_plain(slot, decl.name, size))
        return _make_seq(tuple(actions))

    def _c_exprstmt(self, stmt):
        return _make_exprstmt(self.compile_expr(stmt.expr))

    def _c_if(self, stmt):
        return _make_if(
            self.compile_expr(stmt.cond),
            self.compile_stmt(stmt.then),
            self.compile_stmt(stmt.els) if stmt.els is not None
            else None)

    def _c_while(self, stmt):
        body = self.compile_stmt(stmt.body)
        protect = _can_escape(stmt.body, True) \
            or _can_escape(stmt.body, False)
        return _make_while(self.compile_expr(stmt.cond), body, protect)

    def _c_dowhile(self, stmt):
        body = self.compile_stmt(stmt.body)
        protect = _can_escape(stmt.body, True) \
            or _can_escape(stmt.body, False)
        return _make_dowhile(body, self.compile_expr(stmt.cond),
                             protect)

    def _c_for(self, stmt):
        self.scopes.append({})
        try:
            init_c = self.compile_stmt(stmt.init) \
                if stmt.init is not None else None
            cond_c = self.compile_expr(stmt.cond) \
                if stmt.cond is not None else None
            body_c = self.compile_stmt(stmt.body)
            step_c = self.compile_expr(stmt.step) \
                if stmt.step is not None else None
        finally:
            self.scopes.pop()
        protect = _can_escape(stmt.body, True) \
            or _can_escape(stmt.body, False)
        return _make_for(init_c, cond_c, step_c, body_c, protect)

    def _c_return(self, stmt):
        return _make_return(self.compile_expr(stmt.expr)
                            if stmt.expr is not None else None)

    def _c_break(self, stmt):
        return _make_break()

    def _c_continue(self, stmt):
        return _make_continue()

    def _c_empty(self, stmt):
        return _make_seq(())

    def _c_switch(self, stmt):
        cond_c = self.compile_expr(stmt.cond)
        groups = []
        for item in stmt.body.items:
            if isinstance(item, c_ast.Case):
                groups.append((False, _const_value(item.expr),
                               tuple(self.compile_stmt(s)
                                     for s in item.stmts)))
            elif isinstance(item, c_ast.Default):
                groups.append((True, None,
                               tuple(self.compile_stmt(s)
                                     for s in item.stmts)))
            else:
                raise _CompileFallback(
                    "switch body contains a non-case statement")
        return _make_switch(cond_c, tuple(groups))

    def _c_label(self, stmt):
        inner = self.compile_stmt(stmt.stmt)
        return _make_seq((inner,))

    def _c_goto(self, stmt):
        return _make_raise_stmt("goto is not supported by the simulator")

    def _c_structdecl(self, stmt):
        return _make_seq(())

    # -- expressions ---------------------------------------------------------

    def compile_expr(self, expr):
        method = self._EXPR.get(expr.__class__)
        if method is None:
            return _make_raise_expr("cannot evaluate %s"
                                    % type(expr).__name__)
        return method(self, expr)

    def _c_id(self, expr):
        name = expr.name
        res = self.resolve(name)
        if res is None:
            if name in self.cu.functions:
                return _make_const(FunctionRef(name))
            return _make_id_late(name)
        kind, where, ct = res
        if isinstance(ct, ctypes.ArrayType):
            pe = ctypes.pointee(ct)
            stride = (pe.sizeof() or 4) if pe is not None else 4
            if kind == "local":
                return _make_id_decay_local(where, name, stride, pe)
            return _make_id_decay_global(name, stride, pe)
        flt = _static_flt(ct)
        if kind == "local":
            return _make_id_load_local(where, name, flt, _new_site())
        return _make_id_load_global(name, flt, _new_site())

    def _c_constant(self, expr):
        return _make_const(expr.value)

    def _c_string(self, expr):
        return _make_const(expr.value)

    def _c_binop(self, expr):
        op = expr.op
        if op == "&&":
            return _make_land(self.compile_expr(expr.left),
                              self.compile_expr(expr.right))
        if op == "||":
            return _make_lor(self.compile_expr(expr.left),
                             self.compile_expr(expr.right))
        left_c = self.compile_expr(expr.left)
        right_c = self.compile_expr(expr.right)
        if op == "+":
            return _make_add(left_c, right_c)
        if op == "-":
            return _make_sub(left_c, right_c)
        if op == "*":
            return _make_mul(left_c, right_c)
        if op == "/":
            return _make_div(left_c, right_c)
        if op == "%":
            return _make_mod(left_c, right_c)
        cmp = _CMP_FNS.get(op)
        if cmp is not None:
            return _make_cmp(left_c, right_c, cmp)
        fn = _INT_FNS.get(op)
        if fn is not None:
            return _make_intop(op, left_c, right_c, fn)
        return _make_binop_generic(op, left_c, right_c)

    def _c_unary(self, expr):
        op = expr.op
        if op == "&":
            operand = expr.operand
            if isinstance(operand, c_ast.Id) \
                    and self.resolve(operand.name) is None:
                if operand.name in self.cu.functions:
                    return _make_const(FunctionRef(operand.name))
                if operand.name in _ENV:
                    return _make_const(NULL)
                return _make_raise_expr("undefined identifier %r"
                                        % operand.name)
            lv, ct = self.compile_lvalue(operand)
            if ct is not None:
                return _make_addrof(lv, ct)
            return _make_addrof_dyn(lv)
        if op == "*":
            return _make_deref(self.compile_expr(expr.operand),
                               _new_site())
        if op in ("++", "--", "p++", "p--"):
            lv, ct = self.compile_lvalue(expr.operand)
            delta = 1 if "+" in op else -1
            postfix = op.startswith("p")
            if ct is not None:
                return _make_incdec(lv, ct, delta, postfix)
            return _make_incdec_dyn(lv, delta, postfix)
        if op == "sizeof":
            operand = expr.operand
            if isinstance(operand, c_ast.Id):
                res = self.resolve(operand.name)
                if res is not None:
                    size = res[2].sizeof() or 4
                    if res[0] == "local":
                        return _make_sizeof_local(res[1], size)
                    return _make_const(size)
            return _make_const(4)
        return _make_unary_simple(op, self.compile_expr(expr.operand))

    def _c_assign(self, expr):
        lv, ct = self.compile_lvalue(expr.lvalue)
        rhs_c = self.compile_expr(expr.rvalue)
        op = expr.op
        if ct is not None:
            if op == "=":
                return _make_assign_static(lv, rhs_c, make_coercer(ct),
                                           _new_site())
            return _make_augassign_static(lv, rhs_c, op[:-1], ct)
        if op == "=":
            return _make_assign_dyn(lv, rhs_c, _new_site())
        return _make_augassign_dyn(lv, rhs_c, op[:-1])

    def _c_ternary(self, expr):
        return _make_ternary(self.compile_expr(expr.cond),
                             self.compile_expr(expr.then),
                             self.compile_expr(expr.els))

    def _c_funccall(self, expr):
        arg_cs = tuple(self.compile_expr(a) for a in expr.args)
        name = expr.callee_name
        if name is None:
            return _make_call_indirect(self.compile_expr(expr.func),
                                       arg_cs)
        cf = self.cu.functions.get(name)
        if cf is not None:
            return _make_call_static(cf, arg_cs)
        res = self.resolve(name)
        binding = None
        if res is not None:
            kind, where, ct = res
            binding = (kind, where, _static_flt(ct), _new_site())
        return _make_call_named(name, arg_cs, binding)

    def _c_arrayref(self, expr):
        lv, ct = self.compile_lvalue(expr)
        return _make_lvalue_load(lv, ct)

    def _c_memberref(self, expr):
        lv, ct = self.compile_lvalue(expr)
        return _make_lvalue_load(lv, ct)

    def _c_cast(self, expr):
        return _make_cast(self.compile_expr(expr.expr),
                          make_coercer(expr.ctype))

    def _c_sizeoftype(self, expr):
        return _make_const(expr.ctype.sizeof())

    def _c_comma(self, expr):
        return _make_comma(tuple(self.compile_expr(e)
                                 for e in expr.exprs))

    # -- lvalues -------------------------------------------------------------

    def compile_lvalue(self, expr):
        """Returns (closure, static_ctype).  With a static type the
        closure returns a bare address; otherwise it returns an
        (address, ctype) pair."""
        if isinstance(expr, c_ast.Id):
            res = self.resolve(expr.name)
            if res is None:
                return (_make_lv_raise("undefined identifier %r"
                                       % expr.name), None)
            kind, where, ct = res
            if kind == "local":
                return _make_lv_local(where, expr.name), ct
            return _make_lv_global(expr.name), ct
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "*":
            return _make_lv_deref(self.compile_expr(expr.operand)), None
        if isinstance(expr, c_ast.ArrayRef):
            base = expr.base
            if isinstance(base, c_ast.Id):
                res = self.resolve(base.name)
                if res is not None and isinstance(res[2],
                                                  ctypes.ArrayType):
                    kind, where, ct = res
                    element = ct.base
                    stride = element.sizeof() or 4
                    index_c = self.compile_expr(expr.index)
                    if kind == "local":
                        lv = _make_lv_array_static_local(
                            where, base.name, index_c, stride)
                    else:
                        lv = _make_lv_array_static_global(
                            base.name, index_c, stride)
                    return lv, element
            return (_make_lv_array_dyn(self.compile_expr(expr.base),
                                       self.compile_expr(expr.index)),
                    None)
        if isinstance(expr, c_ast.MemberRef):
            member = expr.member
            if expr.arrow:
                return (_make_lv_member_arrow(
                    self.compile_expr(expr.base), member), None)
            inner_lv, inner_ct = self.compile_lvalue(expr.base)
            if inner_ct is not None:
                struct = ctypes.strip_arrays(inner_ct)
                if not isinstance(struct, ctypes.StructType):
                    return (_make_lv_member_nonstruct(inner_lv, False),
                            None)
                # KeyError here aborts compilation -> tree fallback,
                # which raises it at the same execution point
                offset = struct.field_offset(member)
                return (_make_lv_member_offset(inner_lv, offset),
                        struct.field_type(member))
            return _make_lv_member_dyn(inner_lv, member), None
        if isinstance(expr, c_ast.Cast):
            return self.compile_lvalue(expr.expr)
        return (_make_lv_raise("expression is not an lvalue: %s"
                               % type(expr).__name__), None)

    _STMT = {}
    _EXPR = {}


_FunctionCompiler._STMT = {
    c_ast.Compound: _FunctionCompiler._c_compound,
    c_ast.DeclStmt: _FunctionCompiler._c_declstmt,
    c_ast.ExprStmt: _FunctionCompiler._c_exprstmt,
    c_ast.If: _FunctionCompiler._c_if,
    c_ast.While: _FunctionCompiler._c_while,
    c_ast.DoWhile: _FunctionCompiler._c_dowhile,
    c_ast.For: _FunctionCompiler._c_for,
    c_ast.Return: _FunctionCompiler._c_return,
    c_ast.Break: _FunctionCompiler._c_break,
    c_ast.Continue: _FunctionCompiler._c_continue,
    c_ast.EmptyStmt: _FunctionCompiler._c_empty,
    c_ast.Switch: _FunctionCompiler._c_switch,
    c_ast.Label: _FunctionCompiler._c_label,
    c_ast.Goto: _FunctionCompiler._c_goto,
    c_ast.StructDecl: _FunctionCompiler._c_structdecl,
}

_FunctionCompiler._EXPR = {
    c_ast.Id: _FunctionCompiler._c_id,
    c_ast.Constant: _FunctionCompiler._c_constant,
    c_ast.StringLiteral: _FunctionCompiler._c_string,
    c_ast.BinaryOp: _FunctionCompiler._c_binop,
    c_ast.UnaryOp: _FunctionCompiler._c_unary,
    c_ast.Assignment: _FunctionCompiler._c_assign,
    c_ast.TernaryOp: _FunctionCompiler._c_ternary,
    c_ast.FuncCall: _FunctionCompiler._c_funccall,
    c_ast.ArrayRef: _FunctionCompiler._c_arrayref,
    c_ast.MemberRef: _FunctionCompiler._c_memberref,
    c_ast.Cast: _FunctionCompiler._c_cast,
    c_ast.SizeofType: _FunctionCompiler._c_sizeoftype,
    c_ast.Comma: _FunctionCompiler._c_comma,
}
