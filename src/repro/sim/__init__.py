"""Execution substrate: a C AST interpreter with cycle accounting.

Programs (both the original Pthreads sources and the translated RCCE
sources) run on the simulated SCC: every memory access is priced by
:class:`repro.scc.SCCChip`, every arithmetic op by a P54C-flavoured cost
table, so the *relative* runtimes of the paper's configurations emerge
from first principles rather than being hard-coded.
"""

from repro.sim.values import Pointer, FunctionRef
from repro.sim.machine import Memory, StackAllocator
from repro.sim.interpreter import Interpreter, InterpreterError, OP_COSTS
from repro.sim.runner import (
    RunResult,
    run_pthread_single_core,
    run_rcce,
)

__all__ = [
    "Pointer",
    "FunctionRef",
    "Memory",
    "StackAllocator",
    "Interpreter",
    "InterpreterError",
    "OP_COSTS",
    "RunResult",
    "run_pthread_single_core",
    "run_rcce",
]
