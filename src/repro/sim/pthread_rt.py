"""Pthreads runtime for the single-core baseline.

The paper's baseline runs each 32-thread Pthreads benchmark on ONE SCC
core, where the threads compete for processor time (§6: "In each
program 32 threads compete for processor time which greatly reduces the
efficiency of each given thread").  On a single core, time-sliced
threads perform their work *serially* plus scheduling overhead — so the
runtime executes each thread to completion at its join point, accruing
all cycles to the one core, and adds quantum-based context-switch
overhead at the end (:meth:`scheduling_overhead_cycles`).

Mutexes are uncontended under serial execution: lock/unlock charge
their syscall-ish cost, semantics are preserved trivially.

Condition variables under serial execution: signals are *counted* (a
``pthread_cond_signal`` deposits one wakeup, ``broadcast`` deposits
unboundedly many), and a ``pthread_cond_wait`` that finds no deposit
runs other not-yet-started threads — in creation order — until one
deposits a signal.  When every other thread has already run to
completion and the deposit never arrives, the wait can never be
satisfied and the runtime raises
:class:`~repro.sim.watchdog.DeadlockError` with the rendered wait
chain, exactly like the watchdog's lock wait-for graph.  Note one
deliberate divergence from the POSIX race: a signal sent before the
wait is *not* lost here — serial execution cannot reproduce lost-wakeup
interleavings, so the model errs toward progress and leaves
missed-signal hangs to the case where no signaller exists at all.
"""

from repro.sim.interpreter import ThreadExit
from repro.sim.values import FunctionRef, Pointer

THREAD_CREATE_COST = 6000   # clone + setup on a P54C-class core
THREAD_JOIN_COST = 2000
MUTEX_OP_COST = 60
COND_WAIT_COST = 120        # futex-style sleep + requeue, two syscalls


class ThreadRecord:
    __slots__ = ("tid", "func_name", "arg", "finished", "completed",
                 "cycles", "retval")

    def __init__(self, tid, func_name, arg):
        self.tid = tid
        self.func_name = func_name
        self.arg = arg
        self.finished = False   # claimed for execution (re-entry guard)
        self.completed = False  # actually ran to completion
        self.cycles = 0
        self.retval = None


class PthreadRuntime:
    """pthread_* builtins for one single-core process.

    Builtins receive *unevaluated* argument nodes and evaluate them
    through ``interp.eval_expr``; under the compiled engine those
    nodes are bound-closure thunks rather than AST nodes, and
    ``eval_expr`` dispatches either kind, so the same left-to-right
    evaluation (and cycle charging) happens under both engines.
    """

    __slots__ = ("threads", "order", "_next_tid", "_current_tid",
                 "_cond_pending", "_blocked_on")

    def __init__(self):
        self.threads = {}
        self.order = []
        self._next_tid = 1000
        self._current_tid = [0]  # stack; 0 = main thread
        self._cond_pending = {}  # condvar key -> deposited wakeups
        self._blocked_on = {}    # tid -> condvar key while waiting

    # -- builtin registry ---------------------------------------------------

    def builtins(self):
        return {
            "pthread_create": self._create,
            "pthread_join": self._join,
            "pthread_exit": self._exit,
            "pthread_self": self._self,
            "pthread_mutex_init": self._mutex_op,
            "pthread_mutex_destroy": self._mutex_op,
            "pthread_mutex_lock": self._mutex_lock,
            "pthread_mutex_unlock": self._mutex_unlock,
            "pthread_mutex_trylock": self._mutex_lock,
            "pthread_cond_init": self._mutex_op,
            "pthread_cond_destroy": self._mutex_op,
            "pthread_cond_wait": self._cond_wait,
            "pthread_cond_timedwait": self._cond_wait,
            "pthread_cond_signal": self._cond_signal,
            "pthread_cond_broadcast": self._cond_broadcast,
            "pthread_attr_init": self._noop,
            "pthread_attr_destroy": self._noop,
            "pthread_detach": self._noop,
            "pthread_yield": self._noop,
        }

    # -- pthread API -----------------------------------------------------------

    def _create(self, interp, arg_nodes):
        if len(arg_nodes) < 3:
            return 22  # EINVAL
        tid_target = interp.eval_expr(arg_nodes[0])
        if len(arg_nodes) > 1:
            interp.eval_expr(arg_nodes[1])  # attributes, ignored
        func_value = interp.eval_expr(arg_nodes[2])
        arg_value = (interp.eval_expr(arg_nodes[3])
                     if len(arg_nodes) > 3 else None)

        func_name = self._function_name(func_value)
        if func_name is None:
            return 22
        tid = self._next_tid
        self._next_tid += 1
        record = ThreadRecord(tid, func_name, arg_value)
        self.threads[tid] = record
        self.order.append(record)
        if isinstance(tid_target, Pointer) and tid_target.addr:
            interp.store(tid_target.addr, tid)
        interp.charge(THREAD_CREATE_COST)
        if interp._attr is not None:
            interp._attr.add(interp.core_id, "sched_overhead",
                             THREAD_CREATE_COST)
        race = interp._race
        if race is not None:
            race.thread_create(self._current_tid[-1], tid)
        return 0

    @staticmethod
    def _function_name(value):
        if isinstance(value, FunctionRef):
            return value.name
        return None

    def _join(self, interp, arg_nodes):
        if not arg_nodes:
            return 22
        tid = interp.eval_expr(arg_nodes[0])
        for node in arg_nodes[1:]:
            interp.eval_expr(node)
        record = self.threads.get(int(tid) if not isinstance(
            tid, Pointer) else tid.addr)
        interp.charge(THREAD_JOIN_COST)
        if interp._attr is not None:
            interp._attr.add(interp.core_id, "sched_overhead",
                             THREAD_JOIN_COST)
        if record is None:
            return 3  # ESRCH
        self._run_thread(interp, record)
        race = interp._race
        if race is not None:
            race.thread_join(self._current_tid[-1], record.tid)
        return 0

    def _run_thread(self, interp, record):
        if record.finished:
            return
        record.finished = True
        start = interp.cycles
        self._current_tid.append(record.tid)
        try:
            record.retval = interp.call_function(
                record.func_name, [record.arg])
            record.completed = True
        except ThreadExit as texit:
            record.retval = texit.value
            record.completed = True
        finally:
            self._current_tid.pop()
            record.cycles = interp.cycles - start

    def run_pending(self, interp):
        """Execute any threads that were created but never joined."""
        for record in self.order:
            self._run_thread(interp, record)

    def _exit(self, interp, arg_nodes):
        value = interp.eval_expr(arg_nodes[0]) if arg_nodes else None
        if len(self._current_tid) > 1:
            raise ThreadExit(value)
        # pthread_exit from main: let remaining threads run, then stop
        self.run_pending(interp)
        raise ThreadExit(value)

    def _self(self, interp, arg_nodes):
        return self._current_tid[-1]

    def race_thread(self):
        """The thread id the race detector stamps accesses with."""
        return self._current_tid[-1]

    def _mutex_op(self, interp, arg_nodes):
        for node in arg_nodes:
            interp.eval_expr(node)
        interp.charge(MUTEX_OP_COST)
        return 0

    @staticmethod
    def _mutex_key(value):
        """Mutexes are keyed by the mutex variable's address."""
        if isinstance(value, Pointer):
            return ("mutex", value.addr)
        try:
            return ("mutex", int(value))
        except (TypeError, ValueError):
            return ("mutex", id(value))

    def _mutex_lock(self, interp, arg_nodes):
        values = [interp.eval_expr(node) for node in arg_nodes]
        interp.charge(MUTEX_OP_COST)
        if interp._attr is not None:
            interp._attr.add(interp.core_id, "lock_spin",
                             MUTEX_OP_COST)
        race = interp._race
        if race is not None and values:
            race.lock_acquire(self._current_tid[-1],
                              self._mutex_key(values[0]))
        return 0

    def _mutex_unlock(self, interp, arg_nodes):
        values = [interp.eval_expr(node) for node in arg_nodes]
        interp.charge(MUTEX_OP_COST)
        if interp._attr is not None:
            interp._attr.add(interp.core_id, "lock_spin",
                             MUTEX_OP_COST)
        race = interp._race
        if race is not None and values:
            race.lock_release(self._current_tid[-1],
                              self._mutex_key(values[0]))
        return 0

    # -- condition variables ---------------------------------------------------

    @staticmethod
    def _cond_key(value):
        """Condvars are keyed by the variable's address, like mutexes."""
        if isinstance(value, Pointer):
            return ("cond", value.addr)
        try:
            return ("cond", int(value))
        except (TypeError, ValueError):
            return ("cond", id(value))

    def _cond_signal(self, interp, arg_nodes):
        values = [interp.eval_expr(node) for node in arg_nodes]
        interp.charge(MUTEX_OP_COST)
        if not values:
            return 22  # EINVAL
        key = self._cond_key(values[0])
        pending = self._cond_pending.get(key, 0)
        if pending != float("inf"):
            self._cond_pending[key] = pending + 1
        race = interp._race
        if race is not None:
            race.cond_signal(self._current_tid[-1], key)
        return 0

    def _cond_broadcast(self, interp, arg_nodes):
        values = [interp.eval_expr(node) for node in arg_nodes]
        interp.charge(MUTEX_OP_COST)
        if not values:
            return 22
        key = self._cond_key(values[0])
        self._cond_pending[key] = float("inf")
        race = interp._race
        if race is not None:
            race.cond_signal(self._current_tid[-1], key)
        return 0

    def _cond_wait(self, interp, arg_nodes):
        values = [interp.eval_expr(node) for node in arg_nodes]
        interp.charge(COND_WAIT_COST)
        if interp._attr is not None:
            interp._attr.add(interp.core_id, "sched_overhead",
                             COND_WAIT_COST)
        if len(values) < 2:
            return 22
        key = self._cond_key(values[0])
        mutex_key = self._mutex_key(values[1])
        tid = self._current_tid[-1]
        race = interp._race
        if race is not None:
            # the wait atomically drops the mutex before sleeping
            race.lock_release(tid, mutex_key)
        self._blocked_on[tid] = key
        # on DeadlockError the entry stays put: state_dump() reports
        # the parked waiter in the post-mortem
        while not self._cond_pending.get(key, 0):
            if not self._run_next_runnable(interp):
                from repro.sim.watchdog import DeadlockError
                raise DeadlockError(
                    self._render_cond_deadlock(key),
                    cycle=[(tid, key)])
        self._blocked_on.pop(tid, None)
        pending = self._cond_pending[key]
        if pending != float("inf"):
            self._cond_pending[key] = pending - 1
        if race is not None:
            race.cond_wakeup(tid, key)
            race.lock_acquire(tid, mutex_key)
        return 0

    def _run_next_runnable(self, interp):
        """Run the next created-but-not-yet-started thread to
        completion (creation order); False when none remains."""
        for record in self.order:
            if not record.finished:
                self._run_thread(interp, record)
                return True
        return False

    def _render_cond_deadlock(self, key):
        waiters = sorted(tid for tid, blocked
                         in self._blocked_on.items() if blocked == key)
        chain = " -> ".join("thread %s waits on condvar %s"
                            % (tid, key[1]) for tid in waiters)
        return ("deadlock detected in the condvar wait-for graph: %s "
                "-> no runnable thread left to signal it" % chain)

    def _noop(self, interp, arg_nodes):
        for node in arg_nodes:
            interp.eval_expr(node)
        return 0

    # -- diagnostics -----------------------------------------------------------

    def state_dump(self):
        """Thread-table snapshot attached to ``SimulationTimeout``
        when the single-core baseline blows its step budget: which
        simulated threads exist, which finished, and what each cost."""
        return [{"tid": record.tid, "function": record.func_name,
                 "finished": record.completed, "cycles": record.cycles,
                 "blocked_on": self._blocked_on.get(record.tid)}
                for record in self.order]

    # -- scheduling overhead ---------------------------------------------------------

    def scheduling_overhead_cycles(self, config, total_cycles):
        """Context-switch overhead of time-slicing the threads on one
        core: every quantum boundary costs one switch, plus two
        switches (in/out) per thread lifetime."""
        quantum = max(config.scheduler_quantum_cycles, 1)
        switches = total_cycles // quantum
        switches += 2 * len(self.order)
        return switches * config.context_switch_cycles
