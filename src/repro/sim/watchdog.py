"""Deadlock/livelock detection and bounded-failure machinery.

The simulated platform synchronizes with spin-on-test-and-set mutexes
and software barriers (paper §4.5) — primitives with no timeout of
their own.  A translated program with a crossed-lock cycle, a mutex
that is never released, or a crashed peer therefore used to hang the
*host* process.  The watchdog turns every such hang into a structured,
bounded failure:

* :meth:`Watchdog.acquire_lock` replaces the blind blocking acquire
  with a sliced wait that builds the lock wait-for graph (rank → wanted
  register → holding rank → …) and raises :class:`DeadlockError` with
  the full cycle as soon as one closes; a non-cyclic starvation raises
  :class:`LockTimeoutError` after ``lock_timeout`` wall seconds.
* :class:`~repro.rcce.sync.ClockBarrier` takes wall-clock timeouts and
  propagates ``abort()`` with the originating exception
  (:class:`BarrierAbortedError` / :class:`BarrierTimeoutError`).
* The runners convert a blown step budget into
  :class:`SimulationTimeout`, which carries a per-core state dump
  (core, steps, cycles, current function) for every interpreter.

With no watchdog installed every primitive behaves exactly as before —
the cycle accounting never changes either way, so enabling the
watchdog does not perturb simulated results.
"""

import threading
import time

from repro.sim.interpreter import StepLimitExceeded

DEFAULT_LOCK_TIMEOUT = 30.0
DEFAULT_BARRIER_TIMEOUT = 600.0
DEFAULT_SPIN_SLICE = 0.05


class WatchdogError(Exception):
    """Base class for watchdog-detected failures.  ``dumps`` holds
    per-core state dumps when the runner attached them."""

    def __init__(self, message):
        super().__init__(message)
        self.dumps = []


class DeadlockError(WatchdogError):
    """A cycle in the lock wait-for graph."""

    def __init__(self, message, cycle=()):
        super().__init__(message)
        self.cycle = list(cycle)


class LockTimeoutError(WatchdogError):
    """A lock wait exceeded the wall-clock bound without a detectable
    cycle (e.g. the holder finished without releasing)."""


class BarrierTimeoutError(WatchdogError):
    """A barrier wait exceeded its wall-clock bound (dead peer or a
    peer stuck elsewhere)."""


class BarrierAbortedError(WatchdogError):
    """The barrier was aborted, usually because a peer failed; the
    originating exception, when known, is the ``__cause__``."""


class WatchdogAborted(WatchdogError):
    """A watchdog-supervised wait was cancelled because another core
    already failed."""


class HostFaultError(WatchdogError):
    """Base class for host-level supervision failures in the process
    backend: a worker *process* (not a simulated core) died or hung.
    ``shard`` names the affected shard."""

    def __init__(self, message, shard=None):
        super().__init__(message)
        self.shard = shard


class WorkerDeathError(HostFaultError):
    """A shard's worker process exited without reporting a simulated
    failure (killed, crashed, or OOM-reaped)."""


class WorkerStallError(HostFaultError):
    """A shard's worker process made no quantum progress within the
    heartbeat bound while at least one of its ranks was still
    runnable (hung host process, not a simulated deadlock)."""


class ShardRestartsExhaustedError(HostFaultError):
    """A shard died or stalled more times than the restart budget
    allows.  ``report`` carries the :class:`~repro.recovery.supervisor.
    RecoveryReport` of every attempt; the runner degrades to the
    thread backend instead of letting this escape."""

    def __init__(self, message, shard=None, report=None):
        super().__init__(message, shard=shard)
        self.report = report


class SimulationTimeout(StepLimitExceeded):
    """The simulation exceeded its step/cycle budget.  Carries a
    per-core state dump so the failure is diagnosable.  Subclasses
    :class:`StepLimitExceeded` (and therefore ``InterpreterError``) so
    existing budget handling keeps working."""

    def __init__(self, message, dumps=()):
        self.dumps = list(dumps)
        super().__init__(self._render(message, self.dumps))

    @staticmethod
    def _render(message, dumps):
        if not dumps:
            return message
        lines = [message]
        for dump in dumps:
            lines.append(
                "  core %-3s rank %-3s %12s steps %14s cycles  in %s"
                % (dump.get("core"), dump.get("rank", "-"),
                   dump.get("steps"), dump.get("cycles"),
                   dump.get("function") or "?"))
        return "\n".join(lines)


def core_dumps(interpreters, ranks=None):
    """Per-core state dumps for a set of interpreters, sorted by
    core id — the payload of :class:`SimulationTimeout` and friends."""
    dumps = []
    for interp in sorted(interpreters, key=lambda i: i.core_id):
        dump = {"core": interp.core_id, "steps": interp.steps,
                "cycles": interp.cycles,
                "function": interp.current_function}
        if ranks is not None and interp.core_id in ranks:
            dump["rank"] = ranks[interp.core_id]
        dumps.append(dump)
    return dumps


class Watchdog:
    """Run-wide supervision of blocking synchronization waits.

    One watchdog serves one run.  ``lock_timeout`` bounds any single
    lock wait in wall seconds, ``barrier_timeout`` any barrier wait;
    ``spin_slice`` is the poll interval for supervised lock waits (and
    the cadence of deadlock-cycle checks).
    """

    def __init__(self, lock_timeout=DEFAULT_LOCK_TIMEOUT,
                 barrier_timeout=DEFAULT_BARRIER_TIMEOUT,
                 spin_slice=DEFAULT_SPIN_SLICE):
        self.lock_timeout = lock_timeout
        self.barrier_timeout = barrier_timeout
        self.spin_slice = spin_slice
        self.deadlocks_detected = 0
        self._waiting = {}      # rank -> register it is blocked on
        self._lock = threading.Lock()
        self._aborted = False

    def abort(self):
        """Cancel every supervised wait (a peer already failed)."""
        self._aborted = True

    @property
    def aborted(self):
        return self._aborted

    # -- supervised lock acquisition ---------------------------------------

    def acquire_lock(self, lock, register, rank, owners):
        """Acquire ``lock`` (test-and-set register ``register``) on
        behalf of ``rank``, watching for deadlock.  ``owners`` is the
        live register→holder map maintained by the caller."""
        deadline = time.monotonic() + self.lock_timeout
        if rank is not None:
            with self._lock:
                self._waiting[rank] = register
        try:
            while True:
                if lock.acquire(timeout=self.spin_slice):
                    return
                if self._aborted:
                    raise WatchdogAborted(
                        "lock wait on register %d cancelled: another "
                        "core already failed" % register)
                cycle = self._find_cycle(rank, owners)
                if cycle is not None:
                    # One more chance: the cycle may be a transient
                    # hand-off artefact.  Re-probe the lock, then
                    # require the same cycle a second time.
                    if lock.acquire(timeout=self.spin_slice):
                        return
                    if self._find_cycle(rank, owners) == cycle:
                        self.deadlocks_detected += 1
                        self._aborted = True
                        raise DeadlockError(
                            self._render_cycle(cycle), cycle=cycle)
                if time.monotonic() > deadline:
                    holder = owners.get(register)
                    raise LockTimeoutError(
                        "rank %s waited more than %gs for test-and-set "
                        "register %d (held by %s) — mutex never "
                        "released or holder dead"
                        % (rank, self.lock_timeout, register,
                           "rank %s" % holder if holder is not None
                           else "an unknown owner"))
        finally:
            if rank is not None:
                with self._lock:
                    self._waiting.pop(rank, None)

    def _find_cycle(self, start, owners):
        """Follow start → wanted register → holder → … until the walk
        returns to ``start`` (a deadlock cycle, returned as a list of
        ``(rank, register)`` edges) or dead-ends (``None``)."""
        if start is None:
            return None
        with self._lock:
            waiting = dict(self._waiting)
        cycle = []
        rank = start
        seen = set()
        while True:
            register = waiting.get(rank)
            if register is None:
                return None
            cycle.append((rank, register))
            holder = owners.get(register)
            if holder is None or holder == rank:
                return None
            if holder == start:
                return cycle
            if holder in seen:
                return None  # a cycle, but not through ``start``
            seen.add(holder)
            rank = holder

    @staticmethod
    def _render_cycle(cycle):
        chain = " -> ".join(
            "rank %s waits for register %d" % edge for edge in cycle)
        return ("deadlock detected in the lock wait-for graph: %s -> "
                "back to rank %s" % (chain, cycle[0][0]))
