"""The supervising scheduler: a bounded worker pool over the queue.

One :class:`Scheduler` owns a :class:`~repro.serve.queue.JobQueue`,
at most ``pool_size`` worker *processes* (one job per worker — a
crashing or hung job can only take its own process down, never the
pool), and the supervision ladder:

* **deadline enforcement** — a job past its wall-clock deadline is
  killed (``terminate``) and fails with a typed
  :class:`~repro.serve.job.JobDeadlineError`; deadline kills are
  policy, never retried;
* **bounded retry with exponential backoff** — a worker that dies to
  a restartable error (the supervisor's ``RESTARTABLE_ERRORS``
  taxonomy, plus bare worker death) is retried up to
  ``job.max_retries`` times, re-entering the queue with a
  ``retry_base * 2**(attempt-1)`` backoff (capped);
* **preemption/resume** — when a strictly higher-priority job is
  ready and the pool is full, the lowest-priority running preemptible
  job is asked (over its control pipe) to checkpoint at the next
  barrier round and unwind; it resumes later from that snapshot via
  verified replay, so its final result is byte-identical to an
  uninterrupted run.  A worker that ignores the request past
  ``preempt_grace`` seconds is terminated and requeued from its
  newest checkpoint;
* **chaos** — a :class:`~repro.faults.ServeFaultPlan` (``job_kill`` /
  ``job_stall`` rules) is evaluated scheduler-side, deterministically,
  and its actions shipped into the worker, so every rung of this
  ladder is testable without real crashes.

Everything observable flows through a
:class:`~repro.obs.MetricsRegistry` (counters, queue/worker gauges,
a wall-seconds histogram, per-worker collectors).
"""

import multiprocessing
import os
import time

from repro.faults import ServeFaultPlan, parse_fault_spec
from repro.serve.job import (
    DONE,
    FAILED,
    PENDING,
    PREEMPTED,
    RUNNING,
    BackpressureError,
    Job,
    JobSpec,
    UnknownJobError,
    _job_worker_main,
)
from repro.serve.memo import ResultMemo
from repro.serve.queue import JobQueue

DEFAULT_POOL_SIZE = 2
DEFAULT_RETRY_BASE = 0.05
DEFAULT_RETRY_CAP = 1.0
DEFAULT_PREEMPT_GRACE = 30.0


class _WorkerHandle:
    __slots__ = ("job", "proc", "conn", "ctl", "started",
                 "deadline_at", "preempt_requested_at",
                 "checkpoint_path")

    def __init__(self, job, proc, conn, ctl, started, deadline_at,
                 checkpoint_path):
        self.job = job
        self.proc = proc
        self.conn = conn
        self.ctl = ctl
        self.started = started
        self.deadline_at = deadline_at
        self.preempt_requested_at = None
        self.checkpoint_path = checkpoint_path


class Scheduler:
    def __init__(self, pool_size=DEFAULT_POOL_SIZE, queue=None,
                 state_dir=None, memo=None, registry=None, chaos=None,
                 clock=time.monotonic, retry_base=DEFAULT_RETRY_BASE,
                 retry_cap=DEFAULT_RETRY_CAP,
                 preempt_grace=DEFAULT_PREEMPT_GRACE,
                 start_method=None):
        self.pool_size = pool_size
        # not ``queue or JobQueue()``: an empty JobQueue is falsy
        self.queue = queue if queue is not None else JobQueue()
        self.state_dir = state_dir
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
        self.memo = memo if memo is not None else ResultMemo(
            os.path.join(state_dir, "memo")
            if state_dir is not None else None)
        self.registry = registry
        if isinstance(chaos, str):
            _other, serve_rules = _split_serve(chaos)
            chaos = ServeFaultPlan(serve_rules)
        self.chaos = chaos
        self.clock = clock
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.preempt_grace = preempt_grace
        method = start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(method)
        self.jobs = {}            # job_id -> Job, insertion ordered
        self.running = {}         # job_id -> _WorkerHandle
        self._deadline_at = {}    # job_id -> absolute monotonic bound
        self._next_index = 0
        self.counts = {}          # metric name or (name, label) -> n
        self._wall = None
        if registry is not None:
            self._wall = registry.histogram(
                "serve_job_wall_seconds",
                "wall seconds per completed job attempt")
            registry.register_collector("serve.scheduler",
                                        self._collect_metrics,
                                        self.counts.clear)

    # -- metrics ------------------------------------------------------------

    def _count(self, name, label=None, amount=1):
        key = (name, label) if label is not None else name
        self.counts[key] = self.counts.get(key, 0) + amount

    def _collect_metrics(self):
        rows = [
            ("gauge", "serve_queue_depth", {}, len(self.queue)),
            ("gauge", "serve_running_workers", {}, len(self.running)),
            ("gauge", "serve_pool_size", {}, self.pool_size),
        ]
        for key, value in sorted(self.counts.items(),
                                 key=lambda item: str(item[0])):
            if isinstance(key, tuple):
                name, label = key
                labels = {"reason": label} \
                    if name == "serve_jobs_rejected" \
                    else {"outcome": label}
            else:
                name, labels = key, {}
            rows.append(("counter", name, labels, value))
        for handle in self.running.values():
            rows.append(("gauge", "serve_worker_busy",
                         {"worker": handle.proc.pid or 0,
                          "job": handle.job.job_id}, 1))
        for job in self.jobs.values():
            rows.append(("gauge", "serve_job_attempts",
                         {"job": job.job_id, "state": job.state},
                         job.attempts))
        return rows

    # -- submission ---------------------------------------------------------

    def submit(self, source, spec=None, priority=0,
               deadline_seconds=None, max_retries=1,
               preemptible=False, checkpoint_every=1):
        """Admit one job (or raise
        :class:`~repro.serve.job.BackpressureError`); returns the
        :class:`Job`.  A memo hit completes immediately, without
        touching the queue."""
        job = Job("j%04d" % (self._next_index + 1), source,
                  spec=spec if isinstance(spec, JobSpec)
                  else JobSpec.from_dict(spec) if spec else JobSpec(),
                  priority=priority,
                  deadline_seconds=deadline_seconds,
                  max_retries=max_retries, preemptible=preemptible,
                  checkpoint_every=checkpoint_every)
        job.submit_index = self._next_index
        cached = self.memo.lookup(job)
        if cached is not None:
            self._next_index += 1
            job.state = DONE
            job.result = cached
            self.jobs[job.job_id] = job
            self._count("serve_jobs_submitted")
            self._count("serve_results_cached")
            self._count("serve_jobs_completed", "done")
            return job
        try:
            self.queue.admit(job)
        except BackpressureError as exc:
            self._count("serve_jobs_submitted")
            self._count("serve_jobs_rejected", exc.reason)
            raise
        self._next_index += 1
        self.jobs[job.job_id] = job
        self._count("serve_jobs_submitted")
        return job

    def get(self, job_id):
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError("no such job: %s" % job_id)
        return job

    # -- the supervision loop ----------------------------------------------

    def step(self, now=None):
        """One scheduling round: reap, enforce deadlines, preempt,
        dispatch.  Returns ``True`` while there is live or pending
        work."""
        now = self.clock() if now is None else now
        self._reap(now)
        self._enforce_deadlines(now)
        self._maybe_preempt(now)
        self._dispatch(now)
        return bool(self.running) or len(self.queue) > 0

    def run_until_idle(self, timeout=300.0, poll=0.02):
        deadline = self.clock() + timeout
        while self.step():
            if self.clock() > deadline:
                raise TimeoutError(
                    "scheduler still busy after %gs (%d running, "
                    "%d queued)" % (timeout, len(self.running),
                                    len(self.queue)))
            time.sleep(poll)

    # -- internals ----------------------------------------------------------

    def _checkpoint_path(self, job):
        if self.state_dir is None or not job.preemptible:
            return None
        return os.path.join(self.state_dir,
                            "ckpt-%s.ckpt" % job.job_id)

    def _spawn(self, job, now):
        job.attempts += 1
        job.state = RUNNING
        checkpoint_path = self._checkpoint_path(job)
        restore = job.restore_from
        if restore is not None and not os.path.exists(restore):
            restore = None
        actions = []
        if self.chaos is not None and self.chaos.active:
            actions = self.chaos.on_job_start(job.submit_index,
                                              job.attempts)
            for action in actions:
                self._count("serve_chaos_actions", action[0])
        conn_recv, conn_send = self._ctx.Pipe(duplex=False)
        ctl_recv, ctl_send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_job_worker_main,
            args=(job.as_dict(), conn_send, ctl_recv,
                  checkpoint_path, restore, actions),
            daemon=True,
            name="repro-serve-%s" % job.job_id)
        proc.start()
        conn_send.close()
        ctl_recv.close()
        deadline_at = self._deadline_at.get(job.job_id)
        if deadline_at is None and job.deadline_seconds is not None:
            deadline_at = now + job.deadline_seconds
            self._deadline_at[job.job_id] = deadline_at
        self.running[job.job_id] = _WorkerHandle(
            job, proc, conn_recv, ctl_send, now, deadline_at,
            checkpoint_path)
        self.queue.running_bytes += job.estimate_bytes()
        if restore is not None:
            self._count("serve_jobs_resumed")

    def _dispatch(self, now):
        while len(self.running) < self.pool_size:
            job = self.queue.pop_ready(now)
            if job is None:
                return
            deadline_at = self._deadline_at.get(job.job_id)
            if deadline_at is not None and now >= deadline_at:
                self._fail(job, "JobDeadlineError",
                           "deadline expired while queued")
                continue
            self._spawn(job, now)

    def _reap(self, now):
        for job_id, handle in list(self.running.items()):
            message = None
            try:
                if handle.conn.poll(0):
                    message = handle.conn.recv()
            except (EOFError, OSError):
                message = None
            if message is not None:
                self._finish_worker(handle)
                self._handle_message(handle, message, now)
            elif not handle.proc.is_alive():
                self._finish_worker(handle)
                if handle.preempt_requested_at is not None \
                        and handle.job.preemptible:
                    # died while unwinding; its newest checkpoint (if
                    # any) still resumes it
                    self._requeue_preempted(handle)
                else:
                    self._retry_or_fail(
                        handle.job, now, "JobWorkerDeathError",
                        "worker exited (code %s) without reporting "
                        "an outcome" % handle.proc.exitcode,
                        restartable=True)
            else:
                if handle.preempt_requested_at is not None and \
                        now - handle.preempt_requested_at \
                        > self.preempt_grace:
                    # ignored the request (e.g. stuck before its
                    # first barrier): evict and requeue
                    handle.proc.terminate()
                    handle.proc.join(5.0)
                    self._finish_worker(handle)
                    self._requeue_preempted(handle)
                continue

    def _enforce_deadlines(self, now):
        for job_id, handle in list(self.running.items()):
            if handle.deadline_at is None or now < handle.deadline_at:
                continue
            handle.proc.terminate()
            self._finish_worker(handle)
            self._fail(handle.job, "JobDeadlineError",
                       "wall-clock deadline (%gs) expired after "
                       "attempt %d ran %.2fs"
                       % (handle.job.deadline_seconds,
                          handle.job.attempts, now - handle.started))

    def _finish_worker(self, handle):
        self.running.pop(handle.job.job_id, None)
        self.queue.running_bytes = max(
            0, self.queue.running_bytes
            - handle.job.estimate_bytes())
        handle.proc.join(5.0)
        if handle.proc.is_alive():
            handle.proc.terminate()
            handle.proc.join(5.0)
        for conn in (handle.conn, handle.ctl):
            try:
                conn.close()
            except OSError:
                pass

    def _handle_message(self, handle, message, now):
        kind, body = message
        job = handle.job
        if kind == "ok":
            job.state = DONE
            job.result = body
            job.restore_from = None
            self.memo.store(job, body)
            self._count("serve_jobs_completed", "done")
            if self._wall is not None:
                self._wall.observe(body.get("wall_seconds", 0.0))
        elif kind == "preempted":
            self._requeue_preempted(handle)
        else:  # ("error", info)
            self._retry_or_fail(job, now, body.get("error", "Error"),
                               body.get("message", ""),
                               restartable=body.get("restartable",
                                                    False))

    def _requeue_preempted(self, handle):
        job = handle.job
        job.state = PREEMPTED
        job.preemptions += 1
        if handle.checkpoint_path is not None \
                and os.path.exists(handle.checkpoint_path):
            job.restore_from = handle.checkpoint_path
        self._count("serve_jobs_preempted")
        self.queue.requeue(job)

    def _retry_or_fail(self, job, now, error, message,
                       restartable=False):
        if restartable and job.attempts <= job.max_retries:
            self._count("serve_job_retries")
            backoff = min(self.retry_cap,
                          self.retry_base * (2 ** (job.attempts - 1)))
            self.queue.requeue(job, not_before=now + backoff)
            return
        if restartable and job.max_retries > 0:
            error = "JobRetriesExhaustedError"
            message = ("retry budget (%d) exhausted; last error: %s"
                       % (job.max_retries, message))
        self._fail(job, error, message)

    def _fail(self, job, error, message):
        job.state = FAILED
        job.outcome = {"error": error, "message": message}
        self._count("serve_jobs_completed", "failed")

    def _maybe_preempt(self, now):
        if len(self.running) < self.pool_size:
            return
        best = self.queue.max_ready_priority(now)
        if best is None:
            return
        victims = [handle for handle in self.running.values()
                   if handle.job.preemptible
                   and handle.preempt_requested_at is None
                   and handle.job.priority < best]
        if not victims:
            return
        victim = min(victims,
                     key=lambda h: (h.job.priority, h.started))
        self.preempt(victim.job.job_id, now)

    def preempt(self, job_id, now=None):
        """Ask a running job to checkpoint and unwind at its next
        barrier round."""
        handle = self.running.get(job_id)
        if handle is None:
            raise UnknownJobError("job %s is not running" % job_id)
        now = self.clock() if now is None else now
        if handle.preempt_requested_at is not None:
            return
        handle.preempt_requested_at = now
        try:
            handle.ctl.send("preempt")
        except (OSError, BrokenPipeError):
            pass  # the worker is already dying; _reap classifies it

    # -- shutdown and persistence ------------------------------------------

    def drain(self):
        """Graceful shutdown: preempt every preemptible running job
        (waiting for its checkpoint) and terminate the rest back into
        the queue, so :meth:`persist` captures a resumable picture."""
        for job_id in list(self.running):
            handle = self.running.get(job_id)
            if handle is None:
                continue
            if handle.job.preemptible:
                self.preempt(job_id)
            else:
                handle.proc.terminate()
        deadline = self.clock() + max(5.0, self.preempt_grace)
        while self.running and self.clock() < deadline:
            self._reap(self.clock())
            time.sleep(0.02)
        for job_id, handle in list(self.running.items()):
            handle.proc.terminate()
            self._finish_worker(handle)
            if handle.job.preemptible:
                self._requeue_preempted(handle)
            else:
                self.queue.requeue(handle.job)
        # _reap classified terminated non-preemptible workers as
        # worker deaths and may have parked them in retry backoff;
        # that is fine — persist() records them as pending
        for proc in multiprocessing.active_children():
            if proc.name.startswith("repro-serve-"):
                proc.terminate()
                proc.join(5.0)

    def persist(self, path):
        """Atomically write the queue + job table as JSON."""
        import json
        state = {
            "next_index": self._next_index,
            "jobs": [job.as_dict() for job in self.jobs.values()],
        }
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(state, handle)
        os.replace(tmp, path)

    def load(self, path):
        """Restore a persisted queue: pending and preempted (and any
        interrupted running) jobs re-enter the queue; finished jobs
        keep their outcomes for ``repro jobs``."""
        import json
        if not os.path.exists(path):
            return 0
        with open(path) as handle:
            state = json.load(handle)
        self._next_index = state.get("next_index", 0)
        requeued = 0
        for data in state.get("jobs", []):
            job = Job.from_dict(data)
            self.jobs[job.job_id] = job
            if job.state in (PENDING, PREEMPTED, RUNNING):
                if job.state == RUNNING:
                    # the previous daemon died mid-run; rerun (from
                    # the newest checkpoint when one exists)
                    ckpt = self._checkpoint_path(job)
                    if ckpt is not None and os.path.exists(ckpt):
                        job.restore_from = ckpt
                self.queue.requeue(job)
                requeued += 1
        return requeued


def _split_serve(spec):
    from repro.faults import split_serve_rules
    return split_serve_rules(parse_fault_spec(spec))
