"""The admission-controlled job queue.

A bounded priority queue with load shedding: submissions are rejected
with a typed :class:`~repro.serve.job.BackpressureError` — instead of
queueing without bound and OOMing the host — once either

* the pending depth reaches ``max_depth``, or
* the summed memory estimate of pending + running jobs
  (:meth:`Job.estimate_bytes`) would exceed ``memory_budget`` bytes.

Ordering is strict priority (higher first), FIFO within a priority
level.  Retried jobs re-enter through :meth:`requeue` with an
optional not-before time (the scheduler's exponential backoff), which
bypasses admission control — a job already admitted never bounces.
"""

import heapq
import itertools


from repro.serve.job import PENDING, BackpressureError

DEFAULT_MAX_DEPTH = 64
DEFAULT_MEMORY_BUDGET = 512 * 1024 * 1024


class JobQueue:
    def __init__(self, max_depth=DEFAULT_MAX_DEPTH,
                 memory_budget=DEFAULT_MEMORY_BUDGET):
        self.max_depth = max_depth
        self.memory_budget = memory_budget
        self._heap = []           # (-priority, seq, not_before, job)
        self._seq = itertools.count()
        self.running_bytes = 0    # maintained by the scheduler

    def __len__(self):
        return len(self._heap)

    def pending_bytes(self):
        return sum(entry[3].estimate_bytes() for entry in self._heap)

    def admit(self, job):
        """Admission control: enqueue ``job`` or raise
        :class:`BackpressureError`."""
        if len(self._heap) >= self.max_depth:
            raise BackpressureError(
                "queue full (%d pending >= max depth %d); resubmit "
                "later" % (len(self._heap), self.max_depth),
                reason="depth")
        projected = (self.pending_bytes() + self.running_bytes
                     + job.estimate_bytes())
        if projected > self.memory_budget:
            raise BackpressureError(
                "estimated in-flight memory %d B would exceed the "
                "%d B budget; resubmit later"
                % (projected, self.memory_budget), reason="memory")
        self._push(job)

    def requeue(self, job, not_before=0.0):
        """Re-enter an already admitted job (retry, preemption,
        daemon restart) — no admission check."""
        job.state = PENDING
        self._push(job, not_before)

    def _push(self, job, not_before=0.0):
        heapq.heappush(self._heap,
                       (-job.priority, next(self._seq), not_before,
                        job))

    def pop_ready(self, now):
        """The highest-priority job whose backoff window has passed,
        or ``None``.  A backing-off job never blocks a ready one
        behind it."""
        deferred = []
        ready = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[2] <= now:
                ready = entry[3]
                break
            deferred.append(entry)
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return ready

    def peek_priority(self):
        """Highest pending priority, or ``None`` when empty."""
        if not self._heap:
            return None
        return -self._heap[0][0]

    def max_ready_priority(self, now):
        """Highest priority among jobs whose backoff has passed, or
        ``None`` (the scheduler's preemption trigger)."""
        ready = [-entry[0] for entry in self._heap
                 if entry[2] <= now]
        return max(ready) if ready else None

    def jobs(self):
        """Pending jobs in pop order (for status and persistence)."""
        return [entry[3] for entry in sorted(self._heap)]

    def clear(self):
        self._heap = []
