"""The job service: translation-and-simulation as a supervised,
long-running service (the ROADMAP's first ambitious direction).

A run becomes a :class:`~repro.serve.job.Job` first and a CLI
invocation second: serializable, resumable, supervised.  The pieces:

* :mod:`repro.serve.job` — the :class:`Job`/:class:`JobSpec` model,
  the typed failure taxonomy, and :func:`execute_job`, the one
  execution path shared by workers, tests, and the CLI;
* :mod:`repro.serve.queue` — bounded priority queue with admission
  control (depth + memory-estimate load shedding);
* :mod:`repro.serve.scheduler` — the worker-process pool and the
  supervision ladder (deadlines, bounded retry with backoff,
  checkpoint-backed preemption/resume, deterministic chaos);
* :mod:`repro.serve.memo` — content-addressed completed-job result
  memo keyed on (source sha256, spec fingerprint);
* :mod:`repro.serve.daemon` / :mod:`repro.serve.client` — the
  Unix-socket JSON-line protocol behind ``repro serve`` /
  ``repro submit`` / ``repro jobs``.
"""

from repro.serve.job import (  # noqa: F401
    BackpressureError,
    Job,
    JobDeadlineError,
    JobPreempted,
    JobRetriesExhaustedError,
    JobSpec,
    JobTranslationError,
    JobWorkerDeathError,
    ServeError,
    UnknownJobError,
    execute_job,
)
from repro.serve.memo import ResultMemo  # noqa: F401
from repro.serve.queue import JobQueue  # noqa: F401
from repro.serve.scheduler import Scheduler  # noqa: F401

__all__ = [
    "BackpressureError",
    "Job",
    "JobDeadlineError",
    "JobPreempted",
    "JobRetriesExhaustedError",
    "JobSpec",
    "JobTranslationError",
    "JobWorkerDeathError",
    "JobQueue",
    "ResultMemo",
    "Scheduler",
    "ServeError",
    "UnknownJobError",
    "execute_job",
]
