"""Jobs: one pipeline run as a serializable, resumable object.

The CLI's ``repro run`` is one shot: parse, translate, simulate,
print.  The job service turns that shot into a :class:`Job` — a plain
dict-serializable description of *what* to run (source text plus a
:class:`JobSpec` of the semantic knobs) and *how* the service must
treat it (priority, wall-clock deadline, retry budget,
preemptibility).  A job survives pickling into a worker process,
JSON round-trips through the daemon's queue file, and — when
preempted — resumes from a barrier-aligned checkpoint via the
recovery layer's verified-replay restore path.

:func:`execute_job` is the single execution path: the scheduler's
worker processes call it, tests call it in-process, and its output is
byte-identical to the equivalent direct ``repro run`` invocation
(same translate + ``run_rcce`` plumbing underneath).
"""

import hashlib
import json
import time

from repro.recovery import RecoveryOptions


class ServeError(Exception):
    """Base class for job-service failures."""


class BackpressureError(ServeError):
    """Admission control rejected a submission (queue depth or
    in-flight memory estimate over budget).  ``reason`` is ``"depth"``
    or ``"memory"``."""

    def __init__(self, message, reason="depth"):
        super().__init__(message)
        self.reason = reason


class JobDeadlineError(ServeError):
    """A job's wall-clock deadline expired; the scheduler killed its
    worker.  Deadlines are policy, not transient failures — a
    deadline kill is never retried."""


class JobRetriesExhaustedError(ServeError):
    """A job kept dying to restartable errors until its retry budget
    ran out."""


class JobWorkerDeathError(ServeError):
    """A job's worker process died without reporting an outcome
    (crash, ``os._exit``, external kill).  Restartable: the next
    attempt runs on a fresh worker."""


class JobTranslationError(ServeError):
    """The job's source failed to parse or translate.  Deterministic,
    never retried."""


class UnknownJobError(ServeError):
    """A job id that the service has never seen."""


class JobPreempted(ServeError):
    """Internal control-flow signal: the preemption hook fired at a
    barrier round; the worker checkpointed and unwound.  Never
    surfaces as a job outcome — the scheduler requeues the job."""

    def __init__(self, round_id):
        super().__init__("preempted at barrier round %d" % round_id)
        self.round_id = round_id


# Job lifecycle states (Job.state)
PENDING = "pending"
RUNNING = "running"
PREEMPTED = "preempted"
DONE = "done"
FAILED = "failed"


class JobSpec:
    """The semantic half of a job: every knob that can change the
    simulated outcome (and therefore belongs in the result-memo
    fingerprint).  Service policy — priority, deadline, retries —
    lives on :class:`Job` instead and never affects results."""

    FIELDS = ("mode", "num_ues", "engine", "policy", "capacity",
              "fold", "split", "max_steps", "faults")

    def __init__(self, mode="rcce", num_ues=8, engine="compiled",
                 policy="size", capacity=None, fold=False, split=False,
                 max_steps=200_000_000, faults=None):
        if mode not in ("rcce", "pthread"):
            raise ValueError("mode must be 'rcce' or 'pthread', "
                             "not %r" % mode)
        self.mode = mode
        self.num_ues = int(num_ues)
        self.engine = engine
        self.policy = policy
        self.capacity = capacity
        self.fold = bool(fold)
        self.split = bool(split)
        self.max_steps = int(max_steps)
        self.faults = faults or None

    def as_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    @classmethod
    def from_dict(cls, data):
        return cls(**{field: data[field] for field in cls.FIELDS
                      if field in data})

    def fingerprint(self):
        """sha256 over the canonical JSON of the semantic fields —
        the config half of the result memo's (source, config) key."""
        return hashlib.sha256(json.dumps(
            self.as_dict(), sort_keys=True).encode()).hexdigest()

    def framework(self):
        from repro.core.framework import TranslationFramework
        kwargs = {"partition_policy": self.policy,
                  "fold_threads": self.fold,
                  "allow_split": self.split,
                  "strict": False}
        if self.capacity is not None:
            kwargs["on_chip_capacity"] = self.capacity
        return TranslationFramework(**kwargs)

    def __repr__(self):
        return "JobSpec(%s)" % ", ".join(
            "%s=%r" % (field, getattr(self, field))
            for field in self.FIELDS)


class Job:
    """One submission: source + spec + service policy + lifecycle."""

    def __init__(self, job_id, source, spec=None, priority=0,
                 deadline_seconds=None, max_retries=1,
                 preemptible=False, checkpoint_every=1):
        self.job_id = job_id
        self.source = source
        self.spec = spec or JobSpec()
        self.priority = int(priority)
        self.deadline_seconds = deadline_seconds
        self.max_retries = int(max_retries)
        self.preemptible = bool(preemptible)
        self.checkpoint_every = int(checkpoint_every)
        self.state = PENDING
        self.attempts = 0          # worker attempts started
        self.preemptions = 0
        self.submit_index = None   # admission order (chaos targeting)
        self.outcome = None        # {"error","message"} on FAILED
        self.result = None         # execute_job payload on DONE
        self.restore_from = None   # checkpoint path to resume from

    def source_sha(self):
        return hashlib.sha256(self.source.encode()).hexdigest()

    def estimate_bytes(self):
        """Admission-control memory estimate for one worker running
        this job: a worker-process floor plus the parsed source and
        the per-core interpreter/runtime state."""
        return (1_000_000 + 200 * len(self.source)
                + 65_536 * self.spec.num_ues)

    def as_dict(self):
        return {
            "job_id": self.job_id,
            "source": self.source,
            "spec": self.spec.as_dict(),
            "priority": self.priority,
            "deadline_seconds": self.deadline_seconds,
            "max_retries": self.max_retries,
            "preemptible": self.preemptible,
            "checkpoint_every": self.checkpoint_every,
            "state": self.state,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "submit_index": self.submit_index,
            "outcome": self.outcome,
            "result": self.result,
            "restore_from": self.restore_from,
        }

    @classmethod
    def from_dict(cls, data):
        job = cls(data["job_id"], data["source"],
                  JobSpec.from_dict(data.get("spec", {})),
                  priority=data.get("priority", 0),
                  deadline_seconds=data.get("deadline_seconds"),
                  max_retries=data.get("max_retries", 1),
                  preemptible=data.get("preemptible", False),
                  checkpoint_every=data.get("checkpoint_every", 1))
        job.state = data.get("state", PENDING)
        job.attempts = data.get("attempts", 0)
        job.preemptions = data.get("preemptions", 0)
        job.submit_index = data.get("submit_index")
        job.outcome = data.get("outcome")
        job.result = data.get("result")
        job.restore_from = data.get("restore_from")
        return job

    def summary(self):
        row = {"job_id": self.job_id, "state": self.state,
               "priority": self.priority, "attempts": self.attempts,
               "preemptions": self.preemptions}
        if self.outcome:
            row["error"] = self.outcome.get("error")
        if self.result:
            row["cycles"] = self.result.get("cycles")
            row["cached"] = self.result.get("cached", False)
        return row

    def __repr__(self):
        return "Job(%s, %s, priority=%d)" % (self.job_id, self.state,
                                             self.priority)


def _payload(run_result, wall_seconds):
    """Flatten a RunResult into the JSON-safe job result payload."""
    return {
        "cycles": run_result.cycles,
        # JSON turns int keys into strings; do it eagerly so the
        # payload is identical whether or not it crossed a queue file
        "per_core_cycles": {str(rank): cycles for rank, cycles
                            in sorted(run_result.per_core_cycles.items())},
        "exit_value": run_result.exit_value,
        "stdout": run_result.stdout(),
        "diagnostics": [diag.format()
                        for diag in run_result.diagnostics],
        "wall_seconds": wall_seconds,
        "cached": False,
    }


def execute_job(job, checkpoint_path=None, preempt_check=None,
                restore=None, max_steps=None):
    """Run one job to completion (or preemption) and return its
    result payload.

    ``checkpoint_path`` + ``preempt_check`` arm cooperative
    preemption: every barrier round — *after* any checkpoint for that
    round is written — ``preempt_check(round_id)`` is consulted, and a
    truthy answer raises :class:`JobPreempted` out of the run.
    ``restore`` resumes a previously preempted run from its snapshot
    by verified replay, which is why a preempted-then-resumed job is
    byte-identical to an uninterrupted one.

    Runs in-process: worker processes, tests, and the hypothesis
    preemption property all share this one path.
    """
    from repro.sim.runner import (
        run_pthread_single_core,
        run_rcce,
    )

    spec = job.spec
    started = time.monotonic()
    budget = max_steps if max_steps is not None else spec.max_steps
    if spec.mode == "pthread":
        result = run_pthread_single_core(
            job.source, max_steps=budget, engine=spec.engine,
            faults=spec.faults)
        return _payload(result, time.monotonic() - started)

    from repro.cfront.errors import CFrontError
    try:
        if "RCCE_APP" in job.source:
            from repro.cfront.frontend import parse_program
            unit = parse_program(job.source, share=True)
        else:
            translated = spec.framework().translate(job.source)
            if translated.report.has_errors:
                raise JobTranslationError(
                    translated.report.render().splitlines()[0]
                    if len(translated.report) else "translation failed")
            unit = translated.unit
    except CFrontError as exc:
        raise JobTranslationError(str(exc))

    recovery = None
    if checkpoint_path or restore is not None \
            or preempt_check is not None:
        on_round = None
        if preempt_check is not None:
            def on_round(round_id):
                if preempt_check(round_id):
                    raise JobPreempted(round_id)
        recovery = RecoveryOptions(
            checkpoint_path=checkpoint_path,
            checkpoint_every=job.checkpoint_every,
            restore=restore, on_round=on_round)
    result = run_rcce(unit, spec.num_ues, max_steps=budget,
                      engine=spec.engine, faults=spec.faults,
                      recovery=recovery)
    return _payload(result, time.monotonic() - started)


def _job_worker_main(job_data, conn, ctl_conn, checkpoint_path,
                     restore, chaos_actions):
    """Worker-process entry point: run one job, report one message.

    Messages on ``conn``:

    * ``("ok", payload)`` — the run completed;
    * ``("preempted", {"round": r})`` — the preemption hook fired
      after a checkpoint; the scheduler requeues the job;
    * ``("error", {"error", "message", "restartable"})`` — the run
      died; ``restartable`` mirrors the supervisor's
      :data:`~repro.recovery.supervisor.RESTARTABLE_ERRORS` taxonomy.

    ``chaos_actions`` is the (scheduler-evaluated, deterministic)
    :class:`~repro.faults.ServeFaultPlan` schedule for this attempt:
    ``kill`` actions make the worker vanish without a message — the
    scheduler must classify the death itself — and ``stall`` actions
    make it sleep through its deadline.
    """
    import os
    import signal

    from repro.recovery.supervisor import RESTARTABLE_ERRORS

    # under fork the worker inherits the daemon's deferred
    # SIGTERM/SIGINT handlers, which would make the scheduler's
    # deadline/preemption ``terminate()`` a no-op; workers take the
    # default (die) disposition instead
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except ValueError:
            break

    for action in chaos_actions or ():
        if action[0] == "kill":
            # abrupt: no message, no cleanup — exactly what a real
            # worker crash looks like to the scheduler
            os._exit(17)
        elif action[0] == "stall":
            time.sleep(action[2])

    job = Job.from_dict(job_data)

    def preempt_check(_round_id):
        return ctl_conn is not None and ctl_conn.poll(0)

    try:
        payload = execute_job(
            job, checkpoint_path=checkpoint_path,
            preempt_check=preempt_check if job.preemptible else None,
            restore=restore)
    except JobPreempted as exc:
        conn.send(("preempted", {"round": exc.round_id}))
    except BaseException as exc:  # noqa: BLE001 - shipped to scheduler
        conn.send(("error", {
            "error": type(exc).__name__,
            "message": str(exc).splitlines()[0] if str(exc) else "",
            "restartable": isinstance(exc, RESTARTABLE_ERRORS),
        }))
    else:
        conn.send(("ok", payload))
    finally:
        conn.close()
