"""Client side of the daemon's JSON-line Unix-socket protocol."""

import json
import os
import socket
import time

from repro.serve.daemon import SOCK_NAME
from repro.serve.job import ServeError


class DaemonUnreachableError(ServeError):
    """No daemon is listening at the state directory's socket."""


class ServeClient:
    def __init__(self, state_dir, timeout=30.0):
        self.sock_path = os.path.join(os.path.abspath(state_dir),
                                      SOCK_NAME)
        self.timeout = timeout

    def request(self, payload):
        """One round trip; returns the response dict."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.sock_path)
        except OSError as exc:
            sock.close()
            raise DaemonUnreachableError(
                "no daemon at %s (%s); start one with "
                "`repro serve --state-dir %s`"
                % (self.sock_path, exc,
                   os.path.dirname(self.sock_path)))
        try:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            data = b""
            while not data.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        except OSError as exc:
            raise DaemonUnreachableError(
                "daemon at %s dropped the connection (%s)"
                % (self.sock_path, exc))
        finally:
            sock.close()
        if not data.strip():
            raise DaemonUnreachableError(
                "daemon at %s closed the connection without a "
                "response" % self.sock_path)
        return json.loads(data.decode())

    # -- convenience wrappers ----------------------------------------------

    def ping(self):
        return self.request({"op": "ping"})

    def submit(self, source, spec=None, priority=0,
               deadline_seconds=None, max_retries=1,
               preemptible=False, checkpoint_every=1):
        payload = {"op": "submit", "source": source,
                   "priority": priority,
                   "deadline_seconds": deadline_seconds,
                   "max_retries": max_retries,
                   "preemptible": preemptible,
                   "checkpoint_every": checkpoint_every}
        if spec is not None:
            payload["spec"] = spec if isinstance(spec, dict) \
                else spec.as_dict()
        return self.request(payload)

    def jobs(self):
        return self.request({"op": "jobs"})

    def job(self, job_id):
        return self.request({"op": "job", "id": job_id})

    def status(self):
        return self.request({"op": "status"})

    def preempt(self, job_id):
        return self.request({"op": "preempt", "id": job_id})

    def shutdown(self):
        return self.request({"op": "shutdown"})

    def wait(self, job_id, timeout=600.0, poll=0.1):
        """Block until ``job_id`` reaches a terminal state; returns
        its full dict."""
        deadline = time.monotonic() + timeout
        while True:
            response = self.job(job_id)
            if not response.get("ok"):
                raise ServeError(response.get("message",
                                              "job lookup failed"))
            job = response["job"]
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    "job %s still %s after %gs"
                    % (job_id, job["state"], timeout))
            time.sleep(poll)
