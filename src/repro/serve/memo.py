"""Content-addressed completed-job result memo.

The ``parse_program`` memo (``repro.cfront.frontend``) generalized one
level, as the ROADMAP names: where the parser caches *ASTs* keyed on
the source's sha256, the service caches whole *job results* keyed on
``(source sha256, JobSpec fingerprint)`` — every knob that can change
the simulated outcome is in the key, so a hit is byte-identical to a
re-run by construction.  A resubmitted identical job completes
immediately with ``cached=true`` in its payload.

Only clean successes are memoized: a job that ran with fault or chaos
injection is excluded (its *outcome* is deterministic under one seed,
but the operator is usually probing the injection machinery, not the
program), as is anything that failed.  Entries persist as one JSON
file per key under ``<state_dir>/memo/`` so a restarted daemon keeps
its memo warm.
"""

import json
import os


class ResultMemo:
    """(source sha256, spec fingerprint) -> completed result payload."""

    def __init__(self, path=None, max_entries=256):
        self.path = path
        self.max_entries = max_entries
        self._entries = {}     # key -> payload (insertion-ordered)
        self.hits = 0
        self.misses = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._load()

    @staticmethod
    def key_for(job):
        return "%s-%s" % (job.source_sha(), job.spec.fingerprint())

    @staticmethod
    def cacheable(job):
        """Clean, deterministic, fault-free runs only."""
        return job.spec.faults is None

    def _file(self, key):
        return os.path.join(self.path, key + ".json")

    def _load(self):
        try:
            names = sorted(os.listdir(self.path))
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.path, name)) as handle:
                    self._entries[name[:-5]] = json.load(handle)
            except (OSError, ValueError):
                continue  # a torn entry is a miss, never a crash

    def lookup(self, job):
        """The cached payload (marked ``cached=True``) or ``None``."""
        if not self.cacheable(job):
            return None
        entry = self._entries.get(self.key_for(job))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        payload = dict(entry)
        payload["cached"] = True
        return payload

    def store(self, job, payload):
        if not self.cacheable(job) or payload.get("cached"):
            return
        key = self.key_for(job)
        entry = dict(payload)
        entry["cached"] = False
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            if self.path is not None:
                try:
                    os.unlink(self._file(oldest))
                except OSError:
                    pass
        if self.path is not None:
            tmp = self._file(key) + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, self._file(key))

    def __len__(self):
        return len(self._entries)
