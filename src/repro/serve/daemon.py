"""The serve daemon: a Unix-socket front end on the scheduler.

``repro serve`` runs one :class:`ServeDaemon`: an ``AF_UNIX`` listener
at ``<state_dir>/daemon.sock`` speaking one JSON object per line
(request in, response out, connection per request — trivially
scriptable with ``nc -U``).  Between accepts the daemon pumps
:meth:`Scheduler.step`, so supervision continues while the socket is
idle.

Operations: ``submit``, ``jobs``, ``job``, ``status`` (a metrics
snapshot), ``preempt``, ``ping``, ``shutdown``.

**Graceful shutdown.** SIGTERM/SIGINT (or a ``shutdown`` request)
stops admissions, drains the pool — preemptible jobs checkpoint at
their next barrier round, the rest are terminated back into the
queue — persists the queue and job table to ``<state_dir>/queue.json``
atomically, removes the socket, and exits 0.  A restarted daemon
loads that file and picks up where it left off: pending jobs requeue,
preempted jobs resume from their checkpoints by verified replay.
"""

import errno
import json
import os
import signal
import socket

from repro.obs.metrics import MetricsRegistry
from repro.serve.job import ServeError
from repro.serve.scheduler import Scheduler

SOCK_NAME = "daemon.sock"
QUEUE_NAME = "queue.json"


class ServeDaemon:
    def __init__(self, state_dir, pool_size=2, max_depth=None,
                 memory_budget=None, chaos=None, registry=None,
                 preempt_grace=None, log=None):
        from repro.serve.queue import (
            DEFAULT_MAX_DEPTH,
            DEFAULT_MEMORY_BUDGET,
            JobQueue,
        )
        self.state_dir = os.path.abspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.sock_path = os.path.join(self.state_dir, SOCK_NAME)
        self.queue_path = os.path.join(self.state_dir, QUEUE_NAME)
        self.registry = registry or MetricsRegistry()
        queue = JobQueue(
            max_depth=max_depth if max_depth is not None
            else DEFAULT_MAX_DEPTH,
            memory_budget=memory_budget if memory_budget is not None
            else DEFAULT_MEMORY_BUDGET)
        kwargs = {}
        if preempt_grace is not None:
            kwargs["preempt_grace"] = preempt_grace
        self.scheduler = Scheduler(pool_size=pool_size, queue=queue,
                                   state_dir=self.state_dir,
                                   registry=self.registry,
                                   chaos=chaos, **kwargs)
        self.log = log or (lambda line: None)
        self._listener = None
        self._stop = False
        self._draining = False

    # -- lifecycle ----------------------------------------------------------

    def _install_signals(self):
        import threading
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda _s, _f: self.request_stop())
        return previous

    def request_stop(self):
        self._stop = True

    def serve_forever(self, poll=0.05):
        """Bind, restore persisted state, and run until stopped.
        Returns 0 (the process exit code) after a graceful drain."""
        restored = self.scheduler.load(self.queue_path)
        if restored:
            self.log("restored %d queued job(s) from %s"
                     % (restored, self.queue_path))
        try:
            os.unlink(self.sock_path)
        except OSError as exc:
            if exc.errno != errno.ENOENT:
                raise
        self._listener = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
        self._listener.bind(self.sock_path)
        self._listener.listen(8)
        self._listener.settimeout(poll)
        previous = self._install_signals()
        self.log("listening on %s (pool %d)"
                 % (self.sock_path, self.scheduler.pool_size))
        try:
            while not self._stop:
                self.scheduler.step()
                try:
                    conn, _addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with conn:
                    self._serve_one(conn)
            self._shutdown()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._listener.close()
            try:
                os.unlink(self.sock_path)
            except OSError:
                pass
        return 0

    def _shutdown(self):
        self._draining = True
        running = len(self.scheduler.running)
        queued = len(self.scheduler.queue)
        self.log("shutting down: draining %d running job(s), "
                 "%d queued" % (running, queued))
        self.scheduler.drain()
        self.scheduler.persist(self.queue_path)
        self.log("queue persisted to %s; bye" % self.queue_path)

    # -- one request --------------------------------------------------------

    def _serve_one(self, conn):
        conn.settimeout(5.0)
        try:
            data = b""
            while not data.endswith(b"\n"):
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
            if not data.strip():
                return
            try:
                request = json.loads(data.decode())
            except ValueError:
                self._reply(conn, {"ok": False,
                                   "error": "BadRequest",
                                   "message": "not JSON"})
                return
            response = self.handle(request)
            self._reply(conn, response)
        except (OSError, socket.timeout):
            pass

    @staticmethod
    def _reply(conn, response):
        conn.sendall(json.dumps(response).encode() + b"\n")

    def handle(self, request):
        """Dispatch one request dict to a response dict (pure, for
        tests)."""
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pid": os.getpid()}
            if op == "submit":
                if self._stop or self._draining:
                    return {"ok": False, "error": "Draining",
                            "message": "daemon is shutting down"}
                job = self.scheduler.submit(
                    request["source"],
                    spec=request.get("spec"),
                    priority=request.get("priority", 0),
                    deadline_seconds=request.get("deadline_seconds"),
                    max_retries=request.get("max_retries", 1),
                    preemptible=request.get("preemptible", False),
                    checkpoint_every=request.get("checkpoint_every",
                                                 1))
                return {"ok": True, "job_id": job.job_id,
                        "cached": bool(job.result
                                       and job.result.get("cached"))}
            if op == "jobs":
                return {"ok": True,
                        "jobs": [job.summary() for job
                                 in self.scheduler.jobs.values()]}
            if op == "job":
                job = self.scheduler.get(request["id"])
                return {"ok": True, "job": job.as_dict()}
            if op == "status":
                snapshot = self.registry.snapshot()
                return {"ok": True, "metrics": snapshot,
                        "running": len(self.scheduler.running),
                        "queued": len(self.scheduler.queue),
                        "pool_size": self.scheduler.pool_size}
            if op == "preempt":
                self.scheduler.preempt(request["id"])
                return {"ok": True}
            if op == "shutdown":
                self.request_stop()
                return {"ok": True, "message": "draining"}
            return {"ok": False, "error": "BadRequest",
                    "message": "unknown op %r" % op}
        except ServeError as exc:
            response = {"ok": False, "error": type(exc).__name__,
                        "message": str(exc)}
            if getattr(exc, "reason", None) is not None:
                response["reason"] = exc.reason
            return response
