"""Whole-program summaries the static engines share.

Three ingredients:

* **call graph + executor roots** — which *concurrency roots* (``main``
  plus every ``pthread_create``'d function) can execute each function,
  with launch multiplicities from stage 2, giving every access site its
  thread provenance;
* **main-thread phases** — a flow-sensitive PRE / PAR / POST split of
  ``main``'s statements around the pthread create/join structure, so
  the lockset audit does not report the paper's canonical
  initialize-then-spawn and join-then-reduce idioms as races;
* **lock summaries** — per-function must-acquire / may-release effects
  so the lockset dataflow is sound across calls, with mutex names
  mapped onto test-and-set registers exactly the way stage 5's
  :class:`~repro.core.stage5_translate.MutexConversion` does (two
  mutexes that alias one register really are one lock after
  translation).
"""

from repro.cfront import c_ast
from repro.cfront.visitor import enclosing
from repro.ir.cfg import build_cfg
from repro.ir.dataflow import ForwardDataflow
from repro.ir.loops import estimate_trip_count

# main-thread phases
PRE = "pre"      # before any pthread_create can have executed
PAR = "par"      # children may be running
POST = "post"    # after every created thread has been joined

LOCK_CALLS = ("pthread_mutex_lock", "pthread_mutex_trylock")
UNLOCK_CALLS = ("pthread_mutex_unlock",)
RCCE_ACQUIRE = "RCCE_acquire_lock"
RCCE_RELEASE = "RCCE_release_lock"


def join_phase(a, b):
    """PRE+PRE stays PRE, POST+POST stays POST, any mix is PAR."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a == b else PAR


def build_call_graph(unit):
    """``{caller: {callee}}`` over functions *defined* in the unit.

    ``pthread_create``'s function argument is a launch, not a call
    edge — thread functions enter the graph as their own roots."""
    defined = {func.name for func in unit.functions()}
    graph = {}
    for func in unit.functions():
        callees = set()
        for node in c_ast.walk(func.body):
            if isinstance(node, c_ast.FuncCall):
                name = node.callee_name
                if name in defined:
                    callees.add(name)
        graph[func.name] = callees
    return graph


def executor_roots(call_graph, thread_functions, has_main=True):
    """``{function: set of roots}`` — which concurrency roots may run
    each function.  Roots are ``main`` and every thread function."""
    roots = set(thread_functions)
    if has_main:
        roots.add("main")
    executors = {name: set() for name in call_graph}
    for root in roots:
        stack = [root]
        seen = set()
        while stack:
            name = stack.pop()
            if name in seen or name not in call_graph:
                continue
            seen.add(name)
            executors.setdefault(name, set()).add(root)
            stack.extend(call_graph.get(name, ()))
    return executors


def root_multiplicities(launches, multipliers):
    """Thread weight of each root: ``main`` counts once; a thread
    function counts as many times as stage 2 says it is launched."""
    weights = {"main": 1}
    for launch in launches:
        if launch.function_name:
            weights[launch.function_name] = max(
                multipliers.get(launch.function_name, 1), 1)
    return weights


def _calls_in(stmt, names):
    """All FuncCall nodes under a CFG statement (AST node or a
    ``("branch", cond)`` tuple) whose callee is in ``names``."""
    root = stmt[1] if isinstance(stmt, tuple) else stmt
    found = []
    for node in c_ast.walk(root):
        if isinstance(node, c_ast.FuncCall) and node.callee_name in names:
            found.append(node)
    return found


def _site_multiplicity(call):
    """Trip-weighted count of one create/join call site (parent links
    must be populated)."""
    loop = enclosing(call, (c_ast.For, c_ast.While, c_ast.DoWhile))
    if loop is None:
        return 1
    trips, _ = estimate_trip_count(loop)
    return max(trips, 1)


class MainPhases:
    """PRE / PAR / POST classification of every statement in ``main``.

    A statement is PRE when no ``pthread_create`` may have executed
    before it, and POST when (a) no create and no join may execute
    after it and (b) the join sites cover the create sites (join
    multiplicity >= create multiplicity under stage 2's trip
    estimates) — i.e. every child has provably been joined.  Everything
    else is PAR.  Programs without ``main`` classify everything PAR.
    """

    def __init__(self, unit):
        self._phase = {}          # id(statement) -> phase
        self._joins_cover = False
        main = unit.find_function("main")
        if main is None:
            return
        creates = _calls_in(main.body, ("pthread_create",))
        joins = _calls_in(main.body, ("pthread_join",))
        created = sum(_site_multiplicity(call) for call in creates)
        joined = sum(_site_multiplicity(call) for call in joins)
        self._joins_cover = created > 0 and joined >= created
        cfg = build_cfg(main)
        reach = self._reachability(cfg)
        created_in = self._created_before(cfg)
        has_create = {b.index: any(_calls_in(s, ("pthread_create",))
                                   for s in b.statements)
                      for b in cfg.blocks}
        has_join = {b.index: any(_calls_in(s, ("pthread_join",))
                                 for s in b.statements)
                    for b in cfg.blocks}
        for block in cfg.blocks:
            created_flag = created_in.get(block.index, True)
            later = reach.get(block.index, set())
            create_later_blocks = any(has_create[i] for i in later)
            join_later_blocks = any(has_join[i] for i in later)
            statements = block.statements
            for position, stmt in enumerate(statements):
                rest = statements[position + 1:]
                create_after = create_later_blocks or any(
                    _calls_in(s, ("pthread_create",)) for s in rest)
                join_after = join_later_blocks or any(
                    _calls_in(s, ("pthread_join",)) for s in rest)
                if _calls_in(stmt, ("pthread_create",)):
                    # the launch itself begins the parallel phase
                    created_flag = True
                if not created_flag:
                    phase = PRE
                elif self._joins_cover and not create_after \
                        and not join_after:
                    phase = POST
                else:
                    phase = PAR
                node = stmt[1] if isinstance(stmt, tuple) else stmt
                self._phase[id(node)] = phase

    @staticmethod
    def _reachability(cfg):
        """``{index: set of indices reachable via >= 1 edge}``."""
        direct = {b.index: {s.index for s, _ in b.successors}
                  for b in cfg.blocks}
        reach = {i: set(direct[i]) for i in direct}
        changed = True
        while changed:
            changed = False
            for i in reach:
                extra = set()
                for j in reach[i]:
                    extra |= direct.get(j, set())
                if not extra <= reach[i]:
                    reach[i] |= extra
                    changed = True
        return reach

    @staticmethod
    def _created_before(cfg):
        """May-have-created boolean forward dataflow (merge = OR)."""
        in_flag = {b.index: False for b in cfg.blocks}
        out_flag = {b.index: False for b in cfg.blocks}
        changed = True
        while changed:
            changed = False
            for block in cfg.rpo():
                flag = any(out_flag[p.index]
                           for p in block.predecessors)
                if not flag and block is not cfg.entry:
                    flag = in_flag[block.index]
                out = flag or any(_calls_in(s, ("pthread_create",))
                                  for s in block.statements)
                if flag != in_flag[block.index] or \
                        out != out_flag[block.index]:
                    changed = True
                in_flag[block.index] = flag
                out_flag[block.index] = out
        return in_flag

    def phase_of(self, stmt_node, default=PAR):
        return self._phase.get(id(stmt_node), default)


def function_phases(unit, call_graph, executors, main_phases):
    """Phase of every *function*: PAR when a thread root can run it;
    otherwise the join of the phases of its (transitive) call sites in
    ``main``."""
    phases = {}
    for name in call_graph:
        roots = executors.get(name, set())
        if roots - {"main"}:
            phases[name] = PAR
    phases["main"] = None  # main uses per-statement phases
    # seed direct call sites from main, then propagate
    main = unit.find_function("main")
    if main is not None:
        for node in c_ast.walk(main.body):
            if isinstance(node, c_ast.FuncCall) and \
                    node.callee_name in call_graph and \
                    node.callee_name != "main":
                stmt = _enclosing_statement(node)
                site_phase = main_phases.phase_of(
                    stmt if stmt is not None else node)
                phases[node.callee_name] = join_phase(
                    phases.get(node.callee_name), site_phase)
    changed = True
    while changed:
        changed = False
        for caller, callees in call_graph.items():
            caller_phase = phases.get(caller)
            if caller == "main" or caller_phase is None:
                continue
            for callee in callees:
                if phases.get(callee) == PAR:
                    continue
                merged = join_phase(phases.get(callee), caller_phase)
                if merged != phases.get(callee):
                    phases[callee] = merged
                    changed = True
    return phases


def _enclosing_statement(node):
    """The statement node a nested expression belongs to (parent links
    must be populated)."""
    current = node
    while current is not None and \
            not isinstance(current, c_ast.Statement):
        current = getattr(current, "parent", None)
    return current


class LockModel:
    """Mutex-name to test-and-set-register mapping, mirrored from
    stage 5's :class:`MutexConversion`: registers are assigned in walk
    order of first use, modulo the core count — so when the chip runs
    out of registers and two mutexes alias one register, the audit
    treats them as the single lock they become after translation."""

    def __init__(self, unit, num_cores=48):
        self.num_cores = num_cores
        self.lock_ids = {}
        self.aliased = False
        for node in c_ast.walk(unit):
            if not isinstance(node, c_ast.FuncCall):
                continue
            if node.callee_name in LOCK_CALLS + UNLOCK_CALLS:
                self._assign(self._mutex_name(node.args[0])
                             if node.args else "<none>")

    def _assign(self, mutex):
        if mutex not in self.lock_ids:
            self.lock_ids[mutex] = len(self.lock_ids) % self.num_cores
            if len(self.lock_ids) > self.num_cores:
                self.aliased = True
        return self.lock_ids[mutex]

    @staticmethod
    def _mutex_name(arg):
        if isinstance(arg, c_ast.UnaryOp) and arg.op == "&":
            arg = arg.operand
        if isinstance(arg, c_ast.Id):
            return arg.name
        if isinstance(arg, c_ast.ArrayRef):
            base = arg.base
            if isinstance(base, c_ast.Id):
                return base.name
        return "<anonymous>"

    def lock_id_of_call(self, call):
        """The register a lock/unlock call operates on, or None for a
        call this model does not understand."""
        name = call.callee_name
        if name in LOCK_CALLS + UNLOCK_CALLS:
            mutex = self._mutex_name(call.args[0]) \
                if call.args else "<none>"
            return self._assign(mutex)
        if name in (RCCE_ACQUIRE, RCCE_RELEASE):
            if call.args and isinstance(call.args[0], c_ast.Constant) \
                    and call.args[0].kind == "int":
                return call.args[0].value
        return None

    def names_of(self, lock_id):
        """Every mutex name mapped to ``lock_id`` (usually one; more
        under register aliasing)."""
        names = sorted(name for name, rid in self.lock_ids.items()
                       if rid == lock_id)
        return names or ["T&S[%d]" % lock_id]


class _MustLockset(ForwardDataflow):
    """Must-hold lockset over one function's CFG.

    Lattice values are frozensets of register ids; ``None`` is TOP
    (unvisited).  Merge is set intersection, so a lock held on only one
    path into a join is *not* held after it."""

    def __init__(self, engine, function_name, boundary):
        self.engine = engine
        self.function_name = function_name
        self._boundary = boundary

    def initial(self):
        return None

    def boundary(self):
        return self._boundary

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, block, value):
        if value is None:
            return None
        state = value
        for stmt in block.statements:
            state = self.engine.apply_statement(stmt, state)
        return state


class LockSummaries:
    """Per-function lock effects and entry locksets, iterated to an
    interprocedural fixpoint.

    ``must_acquired[f]`` — registers ``f`` definitely holds on return
    that it did not hold on entry; ``may_released[f]`` — registers any
    path through ``f`` (or its callees) may release; ``entry[f]`` —
    the intersection of locksets at ``f``'s call sites (roots enter
    with the empty set).
    """

    ROUNDS = 4

    def __init__(self, unit, model, roots):
        self.unit = unit
        self.model = model
        self.cfgs = {f.name: build_cfg(f) for f in unit.functions()}
        self.must_acquired = {f.name: frozenset()
                              for f in unit.functions()}
        self.may_released = {f.name: frozenset()
                             for f in unit.functions()}
        self.entry = {root: frozenset() for root in roots
                      if root in self.cfgs}
        self.solutions = {}
        self._call_entries = {}
        for _ in range(self.ROUNDS):
            before = (dict(self.must_acquired), dict(self.may_released),
                      dict(self.entry))
            self._round()
            after = (dict(self.must_acquired), dict(self.may_released),
                     dict(self.entry))
            if before == after:
                break

    def _round(self):
        self._call_entries = {}
        for func in self.unit.functions():
            boundary = self.entry.get(func.name, frozenset())
            solver = _MustLockset(self, func.name, boundary)
            cfg = self.cfgs[func.name]
            solution = solver.solve(cfg)
            self.solutions[func.name] = solution
            exit_in, _ = solution[cfg.exit.index]
            if exit_in is not None:
                self.must_acquired[func.name] = \
                    frozenset(exit_in) - boundary
            released = set()
            for stmt in self._statements(func.name):
                for call in _calls_in(stmt, UNLOCK_CALLS
                                      + (RCCE_RELEASE,)):
                    lock = self.model.lock_id_of_call(call)
                    if lock is not None:
                        released.add(lock)
                for call in _calls_in(stmt, tuple(self.cfgs)):
                    released |= self.may_released.get(
                        call.callee_name, frozenset())
            self.may_released[func.name] = frozenset(released)
        # callsite locksets recorded by apply_statement this round
        for callee, states in self._call_entries.items():
            meet = None
            for state in states:
                meet = state if meet is None else meet & state
            if meet is not None:
                self.entry[callee] = meet

    def _statements(self, function_name):
        for block in self.cfgs[function_name].blocks:
            for stmt in block.statements:
                yield stmt

    def apply_statement(self, stmt, state):
        """Flow one CFG statement through a lockset (shared by the
        dataflow solver and the site collector)."""
        root = stmt[1] if isinstance(stmt, tuple) else stmt
        for node in c_ast.walk(root):
            if not isinstance(node, c_ast.FuncCall):
                continue
            name = node.callee_name
            if name in LOCK_CALLS + (RCCE_ACQUIRE,):
                lock = self.model.lock_id_of_call(node)
                if lock is not None:
                    state = state | {lock}
            elif name in UNLOCK_CALLS + (RCCE_RELEASE,):
                lock = self.model.lock_id_of_call(node)
                if lock is not None:
                    state = state - {lock}
            elif name in self.cfgs:
                self._call_entries.setdefault(name, []).append(state)
                state = (state
                         - self.may_released.get(name, frozenset())) \
                    | self.must_acquired.get(name, frozenset())
        return state

    def lockset_at(self, function_name):
        """``{block_index: in_lockset}`` for one function (None for
        unreachable blocks)."""
        solution = self.solutions.get(function_name, {})
        return {index: pair[0] for index, pair in solution.items()}
