"""``repro.static`` — translation-time static analysis.

The paper's central claim is that the sharing behaviour of a pthreads
program is decidable at translation time from stages 1–3; this package
acts on that claim with two engines that run *before* any simulation:

* :class:`~repro.static.lockset.LocksetAuditor` — an Eraser/RacerF
  style static lockset race audit over the CFG, thread provenance, and
  stage-5 mutex/register mapping;
* :class:`~repro.static.intervals.IntervalEngine` — an interval
  abstract interpreter (widening at loop heads, interprocedural
  summaries) flagging out-of-bounds accesses, division by zero, signed
  overflow at the declared C width, and reads of uninitialized locals.

Both report into one :class:`~repro.static.report.StaticReport`, which
mirrors ``repro.race.report`` so the same tooling consumes either.
The :class:`StaticAnalysisStage` pass wires the subsystem into the
translation pipeline behind ``repro check`` / ``repro run
--static-check``.
"""

from repro.cfront import c_ast
from repro.ir.passes import AnalysisPass
from repro.static.domain import (  # noqa: F401  (public API)
    AbstractEnv, Interval, PtrVal, VarState, int_type_range,
)
from repro.static.intervals import IntervalEngine
from repro.static.lockset import LocksetAuditor
from repro.static.report import (  # noqa: F401
    DIV_BY_ZERO, OUT_OF_BOUNDS, OVERFLOW, RACE_CANDIDATE, RTE_CHECKS,
    UNINIT_READ, StaticFinding, StaticReport,
)


class StaticAnalysisStage(AnalysisPass):
    """Optional pipeline stage running both static engines.

    Requires stages 1–3 (variables, thread launches, points-to) and
    provides the ``static_report`` fact; every finding is also
    surfaced as a warning-severity :class:`Diagnostic` so it renders
    through the ordinary pipeline report (the CLI maps findings to
    exit 70 under ``--strict``, mirroring the dynamic detector —
    static findings never abort translation the way parse errors do).
    """

    name = "static-analysis"
    requires = ("variables", "thread_launches", "thread_functions",
                "points_to")
    provides = ("static_report",)

    def __init__(self, num_cores=48, filename="<source>"):
        self.num_cores = num_cores
        self.filename = filename

    def run(self, context):
        unit = context.unit
        c_ast.link_parents(unit)
        variables = context.require("variables")
        launches = context.require("thread_launches")
        thread_functions = context.require("thread_functions")
        points_to = context.require("points_to")
        report = StaticReport()
        auditor = LocksetAuditor(
            unit, variables, launches, thread_functions, points_to,
            num_cores=self.num_cores, filename=self.filename)
        auditor.report_into(report)
        engine = IntervalEngine(unit, variables,
                                filename=self.filename)
        engine.analyze()
        engine.report_into(report)
        # kept for tests and callers that want the raw abstract states
        report.interval_engine = engine
        report.lockset_auditor = auditor
        context.provide("static_report", report)
        context.diagnostics.extend(report.diagnostics())
        return report

    def profile_stats(self, context):
        report = context.facts.get("static_report")
        if report is None:
            return {}
        return {"checks": report.total_checks(),
                "findings": len(report.findings),
                "suppressed": report.lockset_suppressed}


def analyze_source(source, filename="<source>", num_cores=48):
    """Convenience: parse + stages 1–3 + static analysis, returning
    the :class:`StaticReport` (used by tests; the CLI goes through
    :meth:`repro.core.framework.TranslationFramework.check`)."""
    from repro.core.framework import TranslationFramework
    framework = TranslationFramework(num_cores=num_cores)
    result = framework.check(source, filename=filename)
    return result.static_report
