"""Structured static-analysis findings with source provenance.

The shapes deliberately mirror ``repro.race.report`` — a
:class:`StaticReport` carries findings plus the check/suppression
counters, renders the same one-line-clean / indented-findings text, and
exports the same ``checks`` / ``lockset_suppressed`` / ``dropped`` /
``counts`` / ``findings`` JSON keys — so tooling that consumes the
dynamic race report can consume the static one unchanged.
"""

from repro.diagnostics import Diagnostic

STAGE = "static"

# finding categories (the check catalog)
RACE_CANDIDATE = "race-candidate"
OUT_OF_BOUNDS = "out-of-bounds"
DIV_BY_ZERO = "div-by-zero"
OVERFLOW = "overflow"
UNINIT_READ = "uninit-read"

RTE_CHECKS = (OUT_OF_BOUNDS, DIV_BY_ZERO, OVERFLOW, UNINIT_READ)

DEFINITE = "error"     # the error occurs on every concrete run
POSSIBLE = "warning"   # the abstraction cannot rule the error out


class StaticAccessSite:
    """One syntactic access to a shared variable, with the lockset the
    must-analysis proved held there and the threads that may execute
    it."""

    __slots__ = ("function", "kind", "line", "column", "locks",
                 "threads", "phase")

    def __init__(self, function, kind, line, column, locks, threads,
                 phase):
        self.function = function
        self.kind = kind              # "read" | "write"
        self.line = line
        self.column = column
        self.locks = sorted(locks)    # human-readable lock names
        self.threads = sorted(threads)
        self.phase = phase            # pre | par | post

    def describe(self):
        held = "{%s}" % ", ".join(self.locks) if self.locks \
            else "no locks"
        return "%s in %s at line %s holding %s (threads: %s)" % (
            self.kind, self.function or "<global>",
            self.line if self.line is not None else "?", held,
            ", ".join(self.threads) or "?")

    def as_dict(self):
        return {"function": self.function, "kind": self.kind,
                "line": self.line, "column": self.column,
                "locks": self.locks, "threads": self.threads,
                "phase": self.phase}


class StaticFinding:
    """One static finding — a race candidate or a run-time-error
    check violation — with file/line/variable provenance."""

    __slots__ = ("check", "severity", "variable", "function",
                 "message", "filename", "line", "column", "sites")

    def __init__(self, check, severity, variable, function, message,
                 filename=None, line=None, column=None, sites=()):
        self.check = check
        self.severity = severity      # DEFINITE | POSSIBLE
        self.variable = variable      # resolved name, or None
        self.function = function
        self.message = message
        self.filename = filename
        self.line = line
        self.column = column
        self.sites = list(sites)      # StaticAccessSite, races only

    def location(self):
        where = self.filename or "<source>"
        if self.line is not None:
            where += ":%d" % self.line
            if self.column is not None:
                where += ":%d" % self.column
        return where

    def full_message(self):
        text = "%s: %s: %s" % (self.location(), self.check,
                               self.message)
        for site in self.sites:
            text += "\n    " + site.describe()
        return text

    def as_diagnostic(self):
        # surfaced as pipeline warnings regardless of internal
        # severity: a static finding must not abort translation the
        # way a parse error does (--strict maps them to exit 70 at the
        # CLI instead, mirroring the dynamic detector)
        return Diagnostic.warning(
            STAGE, "%s: %s" % (self.check, self.message),
            filename=self.filename, line=self.line, column=self.column)

    def as_dict(self):
        return {"check": self.check, "severity": self.severity,
                "variable": self.variable, "function": self.function,
                "message": self.message, "file": self.filename,
                "line": self.line, "column": self.column,
                "sites": [site.as_dict() for site in self.sites]}

    def __repr__(self):
        return "StaticFinding(%s: %s)" % (self.check, self.message)


class StaticReport:
    """Everything one static-analysis run decided, ready to render,
    export, and count into ``repro.obs`` metrics."""

    def __init__(self):
        self.findings = []
        self.checks = {}              # check kind -> checks evaluated
        self.lockset_suppressed = 0   # shared vars a common lock covers
        self.dropped = 0              # sites skipped (unknown pointer)
        self.shared_variables = 0     # shared vars the audit examined

    # -- accumulation (the engines call these) ----------------------------

    def count_check(self, check, amount=1):
        self.checks[check] = self.checks.get(check, 0) + amount

    def add(self, finding):
        self.findings.append(finding)

    # -- queries ----------------------------------------------------------

    @property
    def has_findings(self):
        return bool(self.findings)

    @property
    def ok(self):
        return not self.has_findings

    def counts(self):
        result = {}
        for finding in self.findings:
            result[finding.check] = result.get(finding.check, 0) + 1
        return result

    def race_candidates(self):
        return [f for f in self.findings
                if f.check == RACE_CANDIDATE]

    def rte_findings(self):
        return [f for f in self.findings if f.check in RTE_CHECKS]

    def candidate_variables(self):
        return {f.variable for f in self.race_candidates()}

    @property
    def suppression_ratio(self):
        """Fraction of examined shared variables the lockset audit
        proved protected — the precision headroom the dynamic detector
        no longer has to cover."""
        considered = len(self.race_candidates()) \
            + self.lockset_suppressed
        if considered == 0:
            return 0.0
        return self.lockset_suppressed / considered

    def total_checks(self):
        return sum(self.checks.values())

    # -- output -----------------------------------------------------------

    def diagnostics(self):
        return [finding.as_diagnostic() for finding in self.findings]

    def render(self):
        if not self.has_findings:
            return "static audit: clean (%d checks over %d shared " \
                "variable(s), %d lockset-suppressed)" % (
                    self.total_checks(), self.shared_variables,
                    self.lockset_suppressed)
        counts = self.counts()
        races = counts.get(RACE_CANDIDATE, 0)
        rtes = sum(counts.get(kind, 0) for kind in RTE_CHECKS)
        lines = ["static audit: %d race candidate(s), %d run-time-"
                 "error finding(s) (%d checks, %d lockset-suppressed, "
                 "suppression ratio %.2f)"
                 % (races, rtes, self.total_checks(),
                    self.lockset_suppressed, self.suppression_ratio)]
        for finding in self.findings:
            lines.append("  " + finding.full_message())
        return "\n".join(lines)

    def as_dict(self):
        return {"checks": self.total_checks(),
                "per_check": dict(self.checks),
                "lockset_suppressed": self.lockset_suppressed,
                "dropped": self.dropped,
                "shared_variables": self.shared_variables,
                "suppression_ratio": self.suppression_ratio,
                "counts": self.counts(),
                "findings": [f.as_dict() for f in self.findings]}

    def register_metrics(self, registry):
        """Publish per-check counters into a
        :class:`repro.obs.metrics.MetricsRegistry`."""
        checks = registry.counter(
            "static_checks_total",
            "static checks evaluated, by check kind", ("check",))
        for kind, amount in sorted(self.checks.items()):
            checks.labels(check=kind).inc(amount)
        found = registry.counter(
            "static_findings_total",
            "static findings reported, by check kind and severity",
            ("check", "severity"))
        for finding in self.findings:
            found.labels(check=finding.check,
                         severity=finding.severity).inc()
        suppressed = registry.counter(
            "static_lockset_suppressed_total",
            "shared variables proven protected by a common lock")
        suppressed.inc(self.lockset_suppressed)

    def __len__(self):
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)
