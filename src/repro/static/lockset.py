"""Eraser-style static lockset race audit (RacerF's recipe over our
own CFGs instead of Frama-C's).

For every shared variable (stage 1/2's ``is_shared``), collect every
syntactic access site together with (a) the must-hold lockset the
:class:`~repro.static.summaries.LockSummaries` dataflow proved at that
site, (b) the concurrency roots that may execute the enclosing
function, and (c) — for sites in ``main`` — the PRE/PAR/POST phase
relative to the pthread create/join structure.  A variable whose
*concurrent* sites include a write, span an effective thread weight of
at least two, and share **no** common lock is a race candidate; a
non-empty intersection suppresses the variable and is counted, so the
report's suppression ratio makes precision regressions visible.

Accesses through pointers are mapped onto their points-to targets
(stage 3), so ``*ptr = 1`` indicts the pointee, not the pointer.
Heap targets and unresolved pointers are counted as ``dropped`` rather
than silently ignored.
"""

from repro.cfront import c_ast, ctypes
from repro.core.stage2_interthread import launch_multiplicities
from repro.static import report as rep
from repro.static import summaries
from repro.static.summaries import PAR

READ = "read"
WRITE = "write"

# opaque runtime handles are synchronization objects, not shared data
_RUNTIME_TYPE_PREFIXES = ("pthread_", "RCCE_")


class _Site:
    __slots__ = ("function", "kind", "node", "lockset", "phase")

    def __init__(self, function, kind, node, lockset, phase):
        self.function = function
        self.kind = kind
        self.node = node
        self.lockset = lockset
        self.phase = phase


class LocksetAuditor:
    """Run the whole audit for one translation unit."""

    def __init__(self, unit, variables, launches, thread_functions,
                 points_to, num_cores=48, filename="<source>"):
        self.unit = unit
        self.variables = variables
        self.points_to = points_to or {}
        self.filename = filename
        self.thread_functions = set(thread_functions)
        self.model = summaries.LockModel(unit, num_cores)
        roots = self.thread_functions | {"main"}
        self.locks = summaries.LockSummaries(unit, self.model, roots)
        self.call_graph = summaries.build_call_graph(unit)
        self.executors = summaries.executor_roots(
            self.call_graph, self.thread_functions,
            has_main=unit.find_function("main") is not None)
        self.multipliers = summaries.root_multiplicities(
            launches, launch_multiplicities(launches))
        self.main_phases = summaries.MainPhases(unit)
        self.function_phases = summaries.function_phases(
            unit, self.call_graph, self.executors, self.main_phases)
        self.dropped = 0
        self.sites = {}        # var key -> [_Site]
        self._collect_all()

    # -- site collection ---------------------------------------------------

    def _collect_all(self):
        for func in self.unit.functions():
            locksets = self.locks.lockset_at(func.name)
            cfg = self.locks.cfgs[func.name]
            for block in cfg.reachable_blocks():
                state = locksets.get(block.index)
                if state is None:
                    state = frozenset()
                for stmt in block.statements:
                    node = stmt[1] if isinstance(stmt, tuple) else stmt
                    phase = self.main_phases.phase_of(node) \
                        if func.name == "main" \
                        else self.function_phases.get(func.name, PAR)
                    for key, kind, at in self._accesses(node, func):
                        self.sites.setdefault(key, []).append(_Site(
                            func.name, kind, at, state, phase))
                    state = self.locks.apply_statement(stmt, state)

    def _accesses(self, root, func):
        """Yield ``(var key, kind, provenance node)`` for every access
        a statement makes, with pointer dereferences mapped onto their
        points-to targets."""
        for node in c_ast.walk(root):
            if isinstance(node, c_ast.Decl) and node.init is not None:
                info = self.variables.get(node.name, func.name)
                if info is not None and info.ctype is not None and \
                        not info.ctype.is_function:
                    yield (info.function, info.name), WRITE, node
                continue
            if not isinstance(node, c_ast.Id):
                continue
            parent = _context_parent(node)
            if isinstance(parent, c_ast.FuncCall) and \
                    _is_callee(parent, node):
                continue
            info = self.variables.get(node.name, func.name)
            if info is None or info.ctype is None or \
                    info.ctype.is_function:
                continue
            key = (info.function, info.name)
            if isinstance(parent, c_ast.UnaryOp) and parent.op == "&":
                # &x publishes x's address: counts as a read (and the
                # pointee accesses show up at the dereference sites)
                yield key, READ, node
                continue
            access_expr, is_deref = _walk_access_chain(node)
            kind, also_read = _access_kind(access_expr)
            if info.ctype.is_pointer:
                yield key, READ, node
                if is_deref:
                    yielded = False
                    for target in self.points_to.get(key, {}):
                        if target[0] == "heap":
                            continue
                        yield target, kind, node
                        if also_read:
                            yield target, READ, node
                        yielded = True
                    if not yielded:
                        self.dropped += 1
                elif kind == WRITE:
                    # writing the pointer variable itself
                    yield key, WRITE, node
            else:
                yield key, kind, node
                if also_read and kind == WRITE:
                    yield key, READ, node

    # -- the audit ---------------------------------------------------------

    def report_into(self, static_report):
        static_report.dropped += self.dropped
        for key in sorted(self.sites,
                          key=lambda k: (k[0] or "", k[1])):
            sites = self.sites[key]
            info = self.variables.get_exact(key[1], key[0])
            if info is None or not getattr(info, "is_shared", False):
                continue
            if _is_runtime_handle(info.ctype):
                continue
            static_report.shared_variables += 1
            static_report.count_check(rep.RACE_CANDIDATE, len(sites))
            concurrent = [s for s in sites if s.phase == PAR]
            if not any(s.kind == WRITE for s in concurrent):
                continue
            roots = set()
            for site in concurrent:
                roots |= self.executors.get(site.function,
                                            {site.function})
            weight = sum(self.multipliers.get(root, 1)
                         for root in roots)
            if weight < 2:
                continue
            intersection = None
            for site in concurrent:
                intersection = site.lockset if intersection is None \
                    else intersection & site.lockset
            if intersection:
                static_report.lockset_suppressed += 1
                continue
            static_report.add(self._finding(info, concurrent, roots))
        return static_report

    def _finding(self, info, concurrent, roots):
        sites = [self._site_record(site) for site in concurrent]
        where = info.name if info.function is None \
            else "%s.%s" % (info.function, info.name)
        writers = sum(1 for s in concurrent if s.kind == WRITE)
        message = ("shared variable '%s' is accessed by %d concurrent "
                   "site(s) (%d write(s)) across threads {%s} with no "
                   "common lock"
                   % (where, len(concurrent), writers,
                      ", ".join(sorted(roots))))
        first = min(concurrent,
                    key=lambda s: _line_of(s.node) or (1 << 30))
        coord = getattr(first.node, "coord", None)
        return rep.StaticFinding(
            rep.RACE_CANDIDATE, rep.POSSIBLE, info.name,
            info.function, message,
            filename=(coord.filename if coord and coord.filename
                      else self.filename),
            line=coord.line if coord else None,
            column=coord.column if coord else None,
            sites=sites)

    def _site_record(self, site):
        coord = getattr(site.node, "coord", None)
        locks = []
        for lock in site.lockset:
            locks.extend(self.model.names_of(lock))
        return rep.StaticAccessSite(
            site.function, site.kind,
            coord.line if coord else None,
            coord.column if coord else None,
            locks,
            sorted(self.executors.get(site.function,
                                      {site.function})),
            site.phase)


def _line_of(node):
    coord = getattr(node, "coord", None)
    return coord.line if coord else None


def _context_parent(node):
    parent = getattr(node, "parent", None)
    while isinstance(parent, c_ast.Cast):
        parent = getattr(parent, "parent", None)
    return parent


def _is_callee(call, node):
    callee = call.func
    while isinstance(callee, c_ast.Cast):
        callee = callee.expr
    if isinstance(callee, c_ast.UnaryOp) and callee.op == "&":
        callee = callee.operand
    return callee is node


def _walk_access_chain(node):
    """Climb from an Id through the dereference operators applied to
    it (``a[i]``, ``*p``, possibly nested) to the full access
    expression.  Returns ``(expression, crossed_a_dereference)``."""
    current = node
    is_deref = False
    while True:
        parent = _context_parent(current)
        if isinstance(parent, c_ast.ArrayRef) and \
                _peel(parent.base) is current:
            is_deref = True
            current = parent
        elif isinstance(parent, c_ast.UnaryOp) and parent.op == "*":
            is_deref = True
            current = parent
        else:
            return current, is_deref


def _access_kind(access_expr):
    """``(kind, also_read)`` of a complete access expression, judged
    from its syntactic context."""
    parent = _context_parent(access_expr)
    if isinstance(parent, c_ast.Assignment) and \
            _peel(parent.lvalue) is _unpeel(access_expr):
        return WRITE, parent.op != "="
    if isinstance(parent, c_ast.UnaryOp) and \
            parent.op in ("++", "--", "p++", "p--"):
        return WRITE, True
    return READ, False


def _peel(node):
    while isinstance(node, c_ast.Cast):
        node = node.expr
    return node


def _unpeel(node):
    # access_expr is already cast-free on the way up; the lvalue may
    # carry casts, so compare peeled identities
    return node


def _is_runtime_handle(ctype):
    if ctype is None:
        return False
    base = ctypes.strip_arrays(ctype) if ctype.is_array else ctype
    if base.is_pointer:
        base = ctypes.pointee(base) or base
    name = getattr(base, "name", "") or ""
    return name.startswith(_RUNTIME_TYPE_PREFIXES)
