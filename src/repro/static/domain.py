"""The interval abstract domain for ``repro.static`` (AstréeA-style).

Values are closed intervals over the extended number line; pointers are
``(base object, element-offset interval)`` pairs so out-of-bounds checks
survive the paper benchmarks' ``double *mat = &mats[m * DIM * DIM]``
idiom.  Initialization is a three-point lattice (INIT / MAYBE_UNINIT /
UNINIT) tracked next to the value, which is how the analyzer reports
reads of uninitialized locals without a separate pass.

Soundness convention: every operation over-approximates — the concrete
result of any C expression always lies inside the abstract interval
(property-tested in ``tests/static/test_property.py``).  Integer
arithmetic is modeled over the mathematical integers; wrap-around is
*reported* (the overflow check) rather than modeled, matching Miné's
treatment of run-time errors as check-and-continue.
"""

from repro.cfront import ctypes

INF = float("inf")

# -- initialization lattice (INIT < MAYBE_UNINIT < UNINIT under join) --------
INIT = "init"
MAYBE_UNINIT = "maybe-uninit"
UNINIT = "uninit"

_INIT_RANK = {INIT: 0, MAYBE_UNINIT: 1, UNINIT: 2}


def join_init(a, b):
    """Join of two initialization states: uninit on *either* path makes
    the result at least maybe-uninit."""
    if a == b:
        return a
    return MAYBE_UNINIT


class Interval:
    """A closed interval [lo, hi] over the extended reals.

    Bounds are Python ints (exact) or ±inf floats; an ``Interval`` is
    never empty — emptiness (unreachable code) is represented by
    ``None`` at the environment level.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        if lo > hi:
            raise ValueError("empty interval [%r, %r]" % (lo, hi))
        self.lo = lo
        self.hi = hi

    # -- constructors ---------------------------------------------------------

    @classmethod
    def top(cls):
        return cls(-INF, INF)

    @classmethod
    def const(cls, value):
        return cls(value, value)

    # -- predicates -----------------------------------------------------------

    @property
    def is_top(self):
        return self.lo == -INF and self.hi == INF

    @property
    def is_const(self):
        return self.lo == self.hi

    def contains(self, value):
        return self.lo <= value <= self.hi

    def contains_zero(self):
        return self.lo <= 0 <= self.hi

    def within(self, lo, hi):
        """True when every concrete value lies inside [lo, hi]."""
        return self.lo >= lo and self.hi <= hi

    # -- lattice --------------------------------------------------------------

    def join(self, other):
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other):
        """Intersection, or None when the intervals are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def widen(self, newer):
        """Standard interval widening: any bound still moving jumps to
        infinity (condition refinement at loop branches recovers the
        finite bound on the body edge)."""
        lo = self.lo if newer.lo >= self.lo else -INF
        hi = self.hi if newer.hi <= self.hi else INF
        return Interval(lo, hi)

    # -- arithmetic -----------------------------------------------------------

    def add(self, other):
        return Interval(_ext_add(self.lo, other.lo),
                        _ext_add(self.hi, other.hi))

    def sub(self, other):
        return Interval(_ext_add(self.lo, -other.hi),
                        _ext_add(self.hi, -other.lo))

    def neg(self):
        return Interval(-self.hi, -self.lo)

    def mul(self, other):
        corners = [_ext_mul(a, b)
                   for a in (self.lo, self.hi)
                   for b in (other.lo, other.hi)]
        return Interval(min(corners), max(corners))

    def divide(self, other):
        """Conservative quotient (used for both / and C's truncating
        integer division).  A divisor interval containing zero yields
        top — the division-by-zero *check* fires separately."""
        if other.contains_zero():
            return Interval.top()
        corners = [_ext_div(a, b)
                   for a in (self.lo, self.hi)
                   for b in (other.lo, other.hi)]
        return Interval(min(corners), max(corners))

    def mod(self, other):
        """C remainder: result has the dividend's sign and magnitude
        strictly below the divisor's."""
        bound = max(abs(other.lo), abs(other.hi))
        if bound == INF or bound == 0:
            return Interval.top()
        lo = 0 if self.lo >= 0 else -(bound - 1)
        hi = 0 if self.hi <= 0 else bound - 1
        return Interval(lo, hi)

    # -- comparison refinement ------------------------------------------------

    def clamp_below(self, bound, strict):
        """Refine with ``self < bound`` (or <=): returns the meet, or
        None when no concrete value satisfies the comparison."""
        hi = bound - 1 if strict and bound != INF else bound
        return self.meet(Interval(-INF, hi))

    def clamp_above(self, bound, strict):
        lo = bound + 1 if strict and bound != -INF else bound
        return self.meet(Interval(lo, INF))

    def __eq__(self, other):
        return isinstance(other, Interval) and \
            self.lo == other.lo and self.hi == other.hi

    def __hash__(self):
        return hash((self.lo, self.hi))

    def __repr__(self):
        return "[%s, %s]" % (_fmt(self.lo), _fmt(self.hi))


def _fmt(bound):
    if bound == INF:
        return "+inf"
    if bound == -INF:
        return "-inf"
    return "%g" % bound if isinstance(bound, float) else "%d" % bound


def _ext_add(a, b):
    if a in (INF, -INF):
        return a
    if b in (INF, -INF):
        return b
    return a + b


def _ext_mul(a, b):
    if a == 0 or b == 0:
        return 0
    if a in (INF, -INF) or b in (INF, -INF):
        return INF if (a > 0) == (b > 0) else -INF
    return a * b


def _ext_div(a, b):
    if b in (INF, -INF):
        return 0
    if a in (INF, -INF):
        return INF if (a > 0) == (b > 0) else -INF
    quotient = a / b
    if isinstance(a, int) and isinstance(b, int):
        # bound C's truncation from both sides
        return quotient
    return quotient


class PtrVal:
    """A pointer value: a known base object plus an element-offset
    interval (pointer arithmetic is element-scaled, like the C it
    models)."""

    __slots__ = ("base", "offset")

    def __init__(self, base, offset=None):
        self.base = base            # a (function_or_None, name) var key
        self.offset = offset if offset is not None else Interval.const(0)

    def shifted(self, delta):
        return PtrVal(self.base, self.offset.add(delta))

    def join(self, other):
        if not isinstance(other, PtrVal) or other.base != self.base:
            return None  # mixed bases: give up on offset tracking
        return PtrVal(self.base, self.offset.join(other.offset))

    def __eq__(self, other):
        return isinstance(other, PtrVal) and self.base == other.base \
            and self.offset == other.offset

    def __repr__(self):
        return "PtrVal(%s+%r)" % ("%s.%s" % (self.base[0] or "<global>",
                                             self.base[1]), self.offset)


class VarState:
    """One variable's abstract state: a value (Interval, PtrVal, or
    None for untracked) and an initialization status."""

    __slots__ = ("value", "init")

    def __init__(self, value=None, init=INIT):
        self.value = value
        self.init = init

    def copy(self):
        return VarState(self.value, self.init)

    def join(self, other, widen=False):
        value = _join_values(self.value, other.value, widen)
        return VarState(value, join_init(self.init, other.init))

    def __eq__(self, other):
        return isinstance(other, VarState) and self.value == other.value \
            and self.init == other.init

    def __repr__(self):
        return "VarState(%r, %s)" % (self.value, self.init)


def _join_values(a, b, widen=False):
    if a is None or b is None:
        return None
    if isinstance(a, Interval) and isinstance(b, Interval):
        return a.widen(b) if widen else a.join(b)
    if isinstance(a, PtrVal):
        return a.join(b)
    return None


class AbstractEnv:
    """The per-program-point environment: var key -> :class:`VarState`.

    A key that is absent is unknown-but-initialized (top) — globals and
    escaped storage live in the engine's flow-insensitive summary, not
    here.
    """

    def __init__(self, states=None):
        self.states = dict(states) if states else {}

    def copy(self):
        return AbstractEnv({key: state.copy()
                            for key, state in self.states.items()})

    def get(self, key):
        return self.states.get(key)

    def set(self, key, state):
        self.states[key] = state

    def join(self, other, widen=False):
        merged = {}
        for key in set(self.states) | set(other.states):
            mine = self.states.get(key)
            theirs = other.states.get(key)
            if mine is None or theirs is None:
                # declared on one path only: out of scope afterwards
                survivor = mine or theirs
                merged[key] = VarState(None, survivor.init)
            else:
                merged[key] = mine.join(theirs, widen)
        return AbstractEnv(merged)

    def __eq__(self, other):
        return isinstance(other, AbstractEnv) and \
            self.states == other.states

    def __repr__(self):
        return "AbstractEnv(%d vars)" % len(self.states)


# -- C type ranges -----------------------------------------------------------

def int_type_range(ctype):
    """``(min, max)`` of a *signed* integral C type, or None when the
    type is unsigned (wrap-around is defined behaviour, not an error),
    floating, or unknown."""
    base = ctypes.strip_arrays(ctype) if ctype.is_array else ctype
    if not isinstance(base, ctypes.PrimitiveType):
        if isinstance(base, ctypes.NamedType) and base.underlying:
            return int_type_range(base.underlying)
        return None
    name = base.name
    if not base.is_integral or name == "void":
        return None
    if "unsigned" in name:
        return None
    width = base.sizeof()
    top = 1 << (width * 8 - 1)
    return (-top, top - 1)
