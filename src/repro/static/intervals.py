"""Interval abstract interpretation over the per-function CFGs.

One :class:`IntervalEngine` analyzes a whole translation unit in two
phases, the AstréeA recipe scaled to the paper's benchmark subset of C:

1. **fixpoint** — every function is solved with a worklist over its
   CFG (branch-condition refinement on the ``true``/``false`` edges,
   widening at loop heads after a short delay), and the functions are
   iterated in interprocedural rounds that grow three monotone
   summaries: flow-insensitive global values, per-parameter seeds
   (including the value ``pthread_create`` passes to a thread
   function's argument), and per-function return intervals;
2. **reporting** — the converged block in-states are replayed once
   with a checker attached, counting every check and recording
   findings for the four run-time-error categories (out-of-bounds,
   division by zero, signed overflow at the declared width, reads of
   uninitialized locals).

Integer arithmetic is modeled over the mathematical integers: overflow
is *reported*, not simulated, so a value that has escaped its declared
range keeps its interval (and the property test in
``tests/static/test_property.py`` can compare against Python's
unbounded ints directly).
"""

from repro.cfront import c_ast, ctypes
from repro.core.stage2_interthread import thread_function_name
from repro.ir.cfg import build_cfg
from repro.static import report as rep
from repro.static.domain import (
    INF, INIT, MAYBE_UNINIT, UNINIT, AbstractEnv, Interval, PtrVal,
    VarState, int_type_range,
)

_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")
_TOP_SEED = object()   # a summary slot explicitly widened to top


class _Checker:
    """Reporting-phase sink: counts every evaluated check, dedupes
    findings by source position, and appends to a StaticReport."""

    def __init__(self, report, filename):
        self.report = report
        self.filename = filename
        self._seen = set()

    def count(self, check):
        self.report.count_check(check)

    def finding(self, check, severity, variable, function, message,
                node):
        coord = getattr(node, "coord", None)
        line = coord.line if coord else None
        column = coord.column if coord else None
        key = (check, variable, line, column, message)
        if key in self._seen:
            return
        self._seen.add(key)
        filename = coord.filename if coord and coord.filename \
            else self.filename
        self.report.add(rep.StaticFinding(
            check, severity, variable, function, message,
            filename=filename, line=line, column=column))


class IntervalEngine:
    """Whole-unit interval analysis (see module docstring)."""

    WIDEN_DELAY = 2     # loop-head visits before widening kicks in
    MAX_ROUNDS = 8      # interprocedural summary rounds
    MAX_VISITS = 64     # per-block safety valve inside one solve

    def __init__(self, unit, variables, filename="<source>"):
        self.unit = unit
        self.variables = variables
        self.filename = filename
        self.functions = list(unit.functions())
        self.defined = {f.name: f for f in self.functions}
        self.cfgs = {f.name: build_cfg(f) for f in self.functions}
        self.heads = {name: cfg.loop_heads()
                      for name, cfg in self.cfgs.items()}
        self.globals = {}       # var key -> VarState (flow-insensitive)
        self.seeds = {}         # (func, param) -> value | _TOP_SEED
        self.returns = {}       # func -> value | _TOP_SEED
        self.solutions = {}     # func -> {block index: in env}
        self.havoc = False      # an unknown store may clobber anything
        self._round = 0
        self._checker = None
        self._current = None    # function being interpreted
        self._init_globals()

    # -- interprocedural driver -------------------------------------------

    def analyze(self):
        # main first: its pthread_create sites seed the thread
        # functions' parameters before the workers are first solved
        ordered = sorted(self.functions,
                         key=lambda f: f.name != "main")
        for self._round in range(self.MAX_ROUNDS):
            before = self._snapshot()
            for func in ordered:
                self.solutions[func.name] = self._solve(func)
            if self._snapshot() == before:
                break
        return self

    def report_into(self, static_report):
        """Replay the converged states once with checks enabled."""
        self._checker = _Checker(static_report, self.filename)
        try:
            for func in self.functions:
                in_envs = self.solutions.get(func.name, {})
                cfg = self.cfgs[func.name]
                for block in cfg.reachable_blocks():
                    env = in_envs.get(block.index)
                    if env is None:
                        continue  # unreachable under the abstraction
                    self._transfer(func, block, env.copy())
        finally:
            self._checker = None
        return static_report

    def exit_env(self, function_name):
        """The abstract environment at a function's exit block (for
        the soundness property tests)."""
        cfg = self.cfgs.get(function_name)
        if cfg is None:
            return AbstractEnv()
        env = self.solutions.get(function_name, {}).get(cfg.exit.index)
        return env if env is not None else AbstractEnv()

    def exit_intervals(self, function_name):
        """``{local name: Interval}`` at a function's exit."""
        env = self.exit_env(function_name)
        result = {}
        for (func, name), state in env.states.items():
            if func == function_name and \
                    isinstance(state.value, Interval):
                result[name] = state.value
        return result

    def _snapshot(self):
        freeze = lambda v: repr(v)
        return (sorted((k, freeze(v)) for k, v in self.globals.items()),
                sorted((k, freeze(v)) for k, v in self.seeds.items()),
                sorted((k, freeze(v)) for k, v in self.returns.items()),
                self.havoc)

    # -- summaries ---------------------------------------------------------

    def _init_globals(self):
        for decl in self.unit.global_decls():
            if decl.ctype is None or decl.ctype.is_function or \
                    decl.storage == "typedef":
                continue
            key = (None, decl.name)
            value = None
            if decl.ctype.is_array:
                # zero-initialized contents joined with any initializer
                value = Interval.const(0)
                if isinstance(decl.init, c_ast.InitList):
                    for item in decl.init.exprs:
                        item_val = self._const_value(item)
                        value = value.join(item_val) if item_val \
                            else None
                        if value is None:
                            break
            elif decl.ctype.is_pointer:
                value = None  # NULL: untracked
            elif decl.init is not None:
                value = self._const_value(decl.init)
            else:
                value = Interval.const(0)
            self.globals[key] = VarState(value, INIT)

    @staticmethod
    def _const_value(expr):
        if isinstance(expr, c_ast.Constant) and \
                isinstance(expr.value, (int, float)):
            return Interval.const(expr.value)
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "-" and \
                isinstance(expr.operand, c_ast.Constant) and \
                isinstance(expr.operand.value, (int, float)):
            return Interval.const(-expr.operand.value)
        return None

    def _merge_summary(self, table, key, value):
        """Monotone join into a summary dict; widen once the rounds
        get long so the interprocedural iteration converges."""
        old = table.get(key)
        if value is None:
            table[key] = _TOP_SEED
            return
        if old is None:
            table[key] = value
            return
        if old is _TOP_SEED:
            return
        widen = self._round >= 2
        if isinstance(old, Interval) and isinstance(value, Interval):
            table[key] = old.widen(value) if widen else old.join(value)
        elif isinstance(old, PtrVal):
            joined = old.join(value)
            table[key] = joined if joined is not None else _TOP_SEED
        elif old != value:
            table[key] = _TOP_SEED

    def _summary_value(self, table, key):
        value = table.get(key)
        return None if value is _TOP_SEED else value

    def _merge_global(self, key, value):
        old = self.globals.get(key, VarState(None, INIT))
        if old.value is None and key not in self.globals:
            self.globals[key] = VarState(value, INIT)
            return
        widen = self._round >= 2
        if old.value is None or value is None:
            merged = None
        else:
            merged = VarState(old.value, INIT).join(
                VarState(value, INIT), widen=widen).value
        self.globals[key] = VarState(merged, INIT)

    def _global_value(self, key):
        if self.havoc:
            return None
        state = self.globals.get(key)
        return state.value if state is not None else None

    # -- per-function solver ----------------------------------------------

    def _entry_env(self, func):
        env = AbstractEnv()
        for param in func.params:
            if param.name is None:
                continue
            key = (func.name, param.name)
            seed = self._summary_value(self.seeds, key)
            env.set(key, VarState(seed, INIT))
        return env

    def _solve(self, func):
        cfg = self.cfgs[func.name]
        heads = self.heads[func.name]
        in_envs = {cfg.entry.index: self._entry_env(func)}
        visits = {}
        worklist = [cfg.entry]
        queued = {cfg.entry.index}
        while worklist:
            block = worklist.pop(0)
            queued.discard(block.index)
            env = in_envs.get(block.index)
            if env is None:
                continue
            for succ, refined in self._transfer(func, block,
                                                env.copy()):
                if refined is None:
                    continue  # infeasible edge
                current = in_envs.get(succ.index)
                if current is None:
                    in_envs[succ.index] = refined
                    changed = True
                else:
                    count = visits.get(succ.index, 0) + 1
                    visits[succ.index] = count
                    widen = succ.index in heads and \
                        count > self.WIDEN_DELAY
                    widen = widen or count > self.MAX_VISITS
                    joined = current.join(refined, widen=widen)
                    changed = joined != current
                    if changed:
                        in_envs[succ.index] = joined
                if changed and succ.index not in queued:
                    worklist.append(succ)
                    queued.add(succ.index)
        return in_envs

    def _transfer(self, func, block, env):
        """Interpret one block; returns ``[(successor, env-or-None)]``
        with branch refinement applied per edge."""
        self._current = func
        branch_cond = None
        for stmt in block.statements:
            if isinstance(stmt, tuple):
                branch_cond = stmt[1]
                self._eval(branch_cond, env)
            else:
                self._exec(stmt, env)
        results = []
        for succ, label in block.successors:
            if branch_cond is not None and \
                    label in ("true", "false", "back") and \
                    not _has_side_effects(branch_cond):
                sense = label != "false"
                results.append((succ, self._refine(env.copy(),
                                                   branch_cond, sense)))
            else:
                results.append((succ, env.copy()))
        return results

    # -- statements --------------------------------------------------------

    def _exec(self, stmt, env):
        if isinstance(stmt, c_ast.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, c_ast.DeclStmt):
            for decl in stmt.decls:
                self._declare(decl, env)
        elif isinstance(stmt, c_ast.Decl):
            self._declare(stmt, env)
        elif isinstance(stmt, c_ast.Return):
            if stmt.expr is not None:
                value = self._eval(stmt.expr, env)
                self._merge_summary(self.returns,
                                    self._current.name, value)
        # Break/Continue/Goto/Label/EmptyStmt: control handled by edges

    def _declare(self, decl, env):
        if decl.name is None or decl.ctype is None or \
                decl.ctype.is_function or decl.storage == "typedef":
            return
        func = self._current
        key = (func.name, decl.name)
        ctype = decl.ctype
        if ctype.is_array:
            if isinstance(decl.init, c_ast.InitList):
                for item in decl.init.exprs:
                    self._eval(item, env)
            env.set(key, VarState(None, INIT))
            return
        if decl.init is not None:
            value = self._eval(decl.init, env)
            if isinstance(decl.init, c_ast.InitList):
                value = None
            self._check_store(value, ctype, decl.name, decl)
            env.set(key, VarState(value, INIT))
            return
        if decl.storage == "static":
            env.set(key, VarState(Interval.const(0), INIT))
            return
        trackable = ctype.is_pointer or ctype.is_integral or \
            ctype.is_floating
        env.set(key, VarState(None, UNINIT if trackable else INIT))

    # -- expressions -------------------------------------------------------

    def _eval(self, node, env):
        if node is None:
            return None
        if isinstance(node, c_ast.Constant):
            if isinstance(node.value, (int, float)):
                return Interval.const(node.value)
            return None
        if isinstance(node, c_ast.Id):
            return self._eval_id(node, env)
        if isinstance(node, c_ast.BinaryOp):
            return self._eval_binop(node, env)
        if isinstance(node, c_ast.UnaryOp):
            return self._eval_unop(node, env)
        if isinstance(node, c_ast.Assignment):
            return self._eval_assignment(node, env)
        if isinstance(node, c_ast.ArrayRef):
            addr = self._address_of(node, env)
            self._check_deref(addr, node, "read")
            return self._load(addr, env)
        if isinstance(node, c_ast.Cast):
            return self._eval_cast(node, env)
        if isinstance(node, c_ast.FuncCall):
            return self._eval_call(node, env)
        if isinstance(node, c_ast.TernaryOp):
            self._eval(node.cond, env)
            then = self._eval(node.then, env)
            other = self._eval(node.els, env)
            if isinstance(then, Interval) and \
                    isinstance(other, Interval):
                return then.join(other)
            if isinstance(then, PtrVal):
                return then.join(other)
            return None
        if isinstance(node, c_ast.Comma):
            value = None
            for item in node.exprs:
                value = self._eval(item, env)
            return value
        if isinstance(node, c_ast.SizeofType):
            try:
                return Interval.const(node.ctype.sizeof())
            except Exception:
                return None
        if isinstance(node, c_ast.InitList):
            for item in node.exprs:
                self._eval(item, env)
            return None
        if isinstance(node, c_ast.MemberRef):
            self._eval(node.base, env)
            return None
        if isinstance(node, c_ast.StringLiteral):
            return None
        return None

    def _eval_id(self, node, env, as_read=True):
        func = self._current
        info = self.variables.get(node.name, func.name)
        if info is None or info.ctype is None or \
                info.ctype.is_function:
            return None
        key = (info.function, info.name)
        if info.ctype.is_array:
            return PtrVal(key)   # array-to-pointer decay
        if info.function is None:
            return self._global_value(key)
        if info.function != func.name:
            return None          # another function's (escaped) local
        state = env.get(key)
        if state is None:
            return None
        if as_read and self._checker is not None and \
                info.scope_kind == "local":
            self._checker.count(rep.UNINIT_READ)
            if state.init == UNINIT:
                self._checker.finding(
                    rep.UNINIT_READ, rep.DEFINITE, info.name,
                    func.name,
                    "'%s' is read before it is initialized"
                    % info.name, node)
            elif state.init == MAYBE_UNINIT:
                self._checker.finding(
                    rep.UNINIT_READ, rep.POSSIBLE, info.name,
                    func.name,
                    "'%s' may be read before it is initialized on "
                    "some path" % info.name, node)
        return state.value

    def _eval_binop(self, node, env):
        op = node.op
        if op in ("&&", "||"):
            self._eval(node.left, env)
            self._eval(node.right, env)
            return Interval(0, 1)
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if op in _COMPARISONS:
            return Interval(0, 1)
        return self._binop_value(op, left, right, node)

    def _binop_value(self, op, left, right, node):
        # pointer arithmetic keeps the base and shifts the offset
        if isinstance(left, PtrVal):
            if isinstance(right, Interval) and op == "+":
                return left.shifted(right)
            if isinstance(right, Interval) and op == "-":
                return left.shifted(right.neg())
            if isinstance(right, PtrVal) and op == "-":
                if right.base == left.base:
                    return left.offset.sub(right.offset)
            return None
        if isinstance(right, PtrVal):
            return right.shifted(left) if op == "+" and \
                isinstance(left, Interval) else None
        if op in ("/", "%"):
            self._check_divide(right, node)
        if not isinstance(left, Interval) or \
                not isinstance(right, Interval):
            return None
        if op == "+":
            value = left.add(right)
        elif op == "-":
            value = left.sub(right)
        elif op == "*":
            value = left.mul(right)
        elif op == "/":
            value = left.divide(right)
        elif op == "%":
            value = left.mod(right)
        elif op == "<<":
            if right.is_const and isinstance(right.lo, int) and \
                    0 <= right.lo < 64:
                value = left.mul(Interval.const(1 << right.lo))
            else:
                value = Interval.top()
        elif op == ">>":
            if left.lo >= 0 and right.is_const and \
                    isinstance(right.lo, int) and 0 <= right.lo < 64:
                value = left.divide(Interval.const(1 << right.lo))
            else:
                value = Interval.top()
        elif op == "&":
            if left.lo >= 0 and right.lo >= 0:
                value = Interval(0, min(left.hi, right.hi))
            else:
                value = Interval.top()
        elif op in ("|", "^"):
            if left.lo >= 0 and right.lo >= 0:
                # carry-free: a|b and a^b never exceed a+b
                value = Interval(0, _sum_hi(left.hi, right.hi))
            else:
                value = Interval.top()
        else:
            return None
        self._check_overflow(value, node)
        return value

    def _eval_unop(self, node, env):
        op = node.op
        if op == "&":
            return self._take_address(node.operand, env)
        if op == "*":
            ptr = self._eval(node.operand, env)
            addr = ptr if isinstance(ptr, PtrVal) else None
            self._check_deref(addr, node, "read")
            return self._load(addr, env)
        if op in ("++", "--", "p++", "p--"):
            return self._step_lvalue(node, env)
        operand = self._eval(node.operand, env)
        if op == "!":
            return Interval(0, 1)
        if not isinstance(operand, Interval):
            return None
        if op == "-":
            value = operand.neg()
            self._check_overflow(value, node)
            return value
        if op == "+":
            return operand
        if op == "~":
            value = operand.neg().sub(Interval.const(1))
            self._check_overflow(value, node)
            return value
        return None

    def _take_address(self, operand, env):
        operand = _peel_casts(operand)
        if isinstance(operand, c_ast.Id):
            info = self.variables.get(operand.name,
                                      self._current.name)
            if info is None:
                return None
            key = (info.function, info.name)
            if info.function == self._current.name and \
                    not info.ctype.is_array:
                # escaped local: value untracked from here on, and no
                # longer eligible for the uninit check
                env.set(key, VarState(None, INIT))
            return PtrVal(key)
        if isinstance(operand, c_ast.ArrayRef):
            addr = self._address_of(operand, env)
            return addr
        if isinstance(operand, c_ast.UnaryOp) and operand.op == "*":
            value = self._eval(operand.operand, env)
            return value if isinstance(value, PtrVal) else None
        return None

    def _step_lvalue(self, node, env):
        """``++x`` / ``x--`` and friends: read-modify-write."""
        delta = Interval.const(1 if "+" in node.op else -1)
        lvalue = _peel_casts(node.operand)
        current = self._eval(lvalue, env)
        if isinstance(current, PtrVal):
            updated = current.shifted(delta)
        elif isinstance(current, Interval):
            updated = current.add(delta)
            self._check_overflow(updated, node,
                                 ctype=self._lvalue_type(lvalue))
        else:
            updated = None
        self._store_lvalue(lvalue, updated, env, check_store=False)
        prefix = node.op in ("++", "--")
        return updated if prefix else current

    def _eval_cast(self, node, env):
        value = self._eval(node.expr, env)
        target = node.ctype
        if value is None or target is None:
            return None
        if isinstance(value, PtrVal):
            # pointer-to-pointer casts keep the base; pointer-to-int
            # drops to an unknown integer
            return value if target.is_pointer else None
        if target.is_pointer or target.is_floating:
            return value
        rng = int_type_range(target)
        if rng is not None and isinstance(value, Interval):
            if value.within(rng[0], rng[1]):
                return value
            return None  # conversion may wrap: value unknown
        return value

    def _eval_call(self, node, env):
        name = node.callee_name
        args = [self._eval(arg, env) for arg in node.args]
        if name == "pthread_create" and len(node.args) >= 4:
            target = thread_function_name(node.args[2])
            worker = self.defined.get(target)
            if worker is not None and worker.params:
                first = worker.params[0]
                if first.name is not None:
                    self._merge_summary(
                        self.seeds, (target, first.name), args[3])
            return Interval.const(0)
        if name in self.defined:
            callee = self.defined[name]
            for param, value in zip(callee.params, args):
                if param.name is not None:
                    self._merge_summary(
                        self.seeds, (name, param.name), value)
            return self._summary_value(self.returns, name)
        return None

    def _eval_assignment(self, node, env):
        value = self._eval(node.rvalue, env)
        lvalue = _peel_casts(node.lvalue)
        if node.op != "=":
            current = self._eval(lvalue, env)
            value = self._binop_value(
                node.op[:-1], current, value,
                _TypedNode(node, self._lvalue_type(lvalue)))
        self._store_lvalue(lvalue, value, env)
        return value

    def _lvalue_type(self, lvalue):
        func = self._current
        if isinstance(lvalue, c_ast.Id):
            info = self.variables.get(lvalue.name, func.name)
            return info.ctype if info is not None else None
        if isinstance(lvalue, c_ast.ArrayRef):
            base = self._lvalue_type(_peel_casts(lvalue.base))
            return _element_type(base)
        if isinstance(lvalue, c_ast.UnaryOp) and lvalue.op == "*":
            base = self._expr_type(lvalue.operand)
            return _element_type(base)
        return None

    def _store_lvalue(self, lvalue, value, env, check_store=True):
        func = self._current
        if isinstance(lvalue, c_ast.Id):
            info = self.variables.get(lvalue.name, func.name)
            if info is None or info.ctype is None or \
                    info.ctype.is_array:
                return
            if check_store:
                self._check_store(value, info.ctype, info.name,
                                  lvalue)
            key = (info.function, info.name)
            if info.function is None:
                self._merge_global(key, value)
            elif info.function == func.name:
                env.set(key, VarState(value, INIT))
            return
        if isinstance(lvalue, c_ast.ArrayRef) or (
                isinstance(lvalue, c_ast.UnaryOp)
                and lvalue.op == "*"):
            addr = self._address_of(lvalue, env)
            self._check_deref(addr, lvalue, "write")
            if addr is None:
                self.havoc = True   # store through an unknown pointer
                return
            if check_store:
                info = self._info_for_key(addr.base)
                if info is not None and info.ctype is not None:
                    self._check_store(
                        value, _strip_to_element(info.ctype),
                        info.name, lvalue)
            self._store_to(addr.base, value, env)
            return
        if isinstance(lvalue, c_ast.MemberRef):
            self.havoc = True
            return

    def _store_to(self, base_key, value, env):
        """Weak update of the object behind a dereference."""
        func_name, _name = base_key
        if func_name is None:
            self._merge_global(base_key, value)
        # contents of local arrays / other functions' locals are
        # untracked: reads come back as top, which is sound

    def _address_of(self, node, env):
        """The PtrVal a dereferenceable lvalue designates, or None."""
        if isinstance(node, c_ast.ArrayRef):
            base = self._eval(node.base, env)
            index = self._eval(node.index, env)
            if isinstance(base, PtrVal) and isinstance(index,
                                                      Interval):
                return base.shifted(index)
            return None
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            value = self._eval(node.operand, env)
            return value if isinstance(value, PtrVal) else None
        return None

    def _load(self, addr, env):
        if addr is None:
            return None
        func_name, name = addr.base
        if func_name is None:
            return self._global_value(addr.base)
        if func_name == self._current.name:
            state = env.get(addr.base)
            info = self._info_for_key(addr.base)
            if info is not None and info.ctype is not None and \
                    not info.ctype.is_array and state is not None and \
                    addr.offset == Interval.const(0):
                return state.value   # *(&x) round trip
        return None

    def _info_for_key(self, key):
        func_name, name = key
        return self.variables.get_exact(name, func_name)

    # -- checks ------------------------------------------------------------

    def _is_float_op(self, node):
        ctype = self._expr_type(node)
        return ctype is not None and ctype.is_floating

    def _check_divide(self, denominator, node):
        if self._checker is None:
            return
        if self._is_float_op(node):
            return   # IEEE division is defined at zero
        self._checker.count(rep.DIV_BY_ZERO)
        if not isinstance(denominator, Interval):
            return   # unknown divisor: not flagged (see docs caveats)
        if denominator == Interval.const(0):
            self._checker.finding(
                rep.DIV_BY_ZERO, rep.DEFINITE, None,
                self._current.name, "division by zero", node)
        elif denominator.contains_zero():
            self._checker.finding(
                rep.DIV_BY_ZERO, rep.POSSIBLE, None,
                self._current.name,
                "divisor range %r includes zero" % denominator, node)

    def _check_overflow(self, value, node, ctype=None):
        if self._checker is None or not isinstance(value, Interval):
            return
        if ctype is None:
            ctype = self._expr_type(node)
        rng = int_type_range(ctype) if ctype is not None else None
        if rng is None:
            return
        self._checker.count(rep.OVERFLOW)
        lo, hi = rng
        if value.lo > hi or value.hi < lo:
            self._checker.finding(
                rep.OVERFLOW, rep.DEFINITE, None, self._current.name,
                "signed overflow: result %r cannot fit %s"
                % (value, _type_name(ctype)), node)
        elif value.hi > hi and value.hi != INF:
            self._checker.finding(
                rep.OVERFLOW, rep.POSSIBLE, None, self._current.name,
                "possible signed overflow: result %r exceeds %s max "
                "%d" % (value, _type_name(ctype), hi), node)
        elif value.lo < lo and value.lo != -INF:
            self._checker.finding(
                rep.OVERFLOW, rep.POSSIBLE, None, self._current.name,
                "possible signed overflow: result %r below %s min %d"
                % (value, _type_name(ctype), lo), node)

    def _check_store(self, value, ctype, name, node):
        if self._checker is None or not isinstance(value, Interval) \
                or ctype is None:
            return
        rng = int_type_range(ctype)
        if rng is None:
            return
        self._checker.count(rep.OVERFLOW)
        lo, hi = rng
        if value.lo > hi or value.hi < lo:
            self._checker.finding(
                rep.OVERFLOW, rep.DEFINITE, name,
                self._current.name,
                "storing %r into '%s' (%s) always overflows"
                % (value, name, _type_name(ctype)), node)

    def _check_deref(self, addr, node, kind):
        if self._checker is None:
            return
        self._checker.count(rep.OUT_OF_BOUNDS)
        if addr is None:
            self._checker.report.dropped += 1
            return
        info = self._info_for_key(addr.base)
        if info is None or info.ctype is None:
            return
        if info.ctype.is_array:
            count = info.ctype.element_count()
        elif info.ctype.is_pointer:
            return   # target object unknown at this level
        else:
            count = 1   # &scalar: only offset 0 is valid
        if not count:
            return
        offset = addr.offset
        valid = Interval(0, count - 1)
        if offset.meet(valid) is None:
            self._checker.finding(
                rep.OUT_OF_BOUNDS, rep.DEFINITE, info.name,
                self._current.name,
                "%s of '%s[%r]' is always outside [0, %d]"
                % (kind, info.name, offset, count - 1), node)
        elif offset.hi > count - 1 and offset.hi != INF:
            self._checker.finding(
                rep.OUT_OF_BOUNDS, rep.POSSIBLE, info.name,
                self._current.name,
                "%s of '%s[%r]' may exceed bound %d"
                % (kind, info.name, offset, count - 1), node)
        elif offset.lo < 0 and offset.lo != -INF:
            self._checker.finding(
                rep.OUT_OF_BOUNDS, rep.POSSIBLE, info.name,
                self._current.name,
                "%s of '%s[%r]' may underrun index 0"
                % (kind, info.name, offset), node)

    # -- static C types (for overflow widths) ------------------------------

    def _expr_type(self, node):
        if isinstance(node, _TypedNode):
            return node.ctype
        if isinstance(node, c_ast.Id):
            info = self.variables.get(node.name, self._current.name)
            return info.ctype if info is not None else None
        if isinstance(node, c_ast.Constant):
            if node.kind == "int" and isinstance(node.value, int):
                if -(2 ** 31) <= node.value < 2 ** 31:
                    return ctypes.INT
                return ctypes.PrimitiveType("long long")
            if node.kind == "char":
                return ctypes.INT   # promoted
            return ctypes.DOUBLE
        if isinstance(node, c_ast.Cast):
            return node.ctype
        if isinstance(node, c_ast.ArrayRef):
            return _element_type(self._expr_type(node.base))
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "*":
                return _element_type(self._expr_type(node.operand))
            if node.op == "&":
                return ctypes.PointerType(
                    self._expr_type(node.operand)
                    or ctypes.PrimitiveType("void"))
            if node.op == "!":
                return ctypes.INT
            return _promote(self._expr_type(node.operand))
        if isinstance(node, c_ast.BinaryOp):
            if node.op in _COMPARISONS or node.op in ("&&", "||"):
                return ctypes.INT
            left = self._expr_type(node.left)
            right = self._expr_type(node.right)
            return _usual_arithmetic(left, right)
        if isinstance(node, c_ast.Assignment):
            return self._lvalue_type(_peel_casts(node.lvalue))
        if isinstance(node, c_ast.TernaryOp):
            left = self._expr_type(node.then)
            right = self._expr_type(node.els)
            return _usual_arithmetic(left, right)
        if isinstance(node, c_ast.FuncCall):
            callee = self.defined.get(node.callee_name)
            return callee.return_type if callee is not None else None
        if isinstance(node, c_ast.Comma):
            return self._expr_type(node.exprs[-1]) if node.exprs \
                else None
        if isinstance(node, c_ast.SizeofType):
            return ctypes.INT
        return None

    # -- branch refinement -------------------------------------------------

    def _refine(self, env, cond, sense):
        """Refine ``env`` assuming ``cond`` evaluates to ``sense``;
        returns None when the edge is infeasible."""
        cond = _peel_casts(cond)
        if isinstance(cond, c_ast.UnaryOp) and cond.op == "!":
            return self._refine(env, cond.operand, not sense)
        if isinstance(cond, c_ast.BinaryOp):
            if cond.op == "&&" and sense:
                env = self._refine(env, cond.left, True)
                return None if env is None else \
                    self._refine(env, cond.right, True)
            if cond.op == "||" and not sense:
                env = self._refine(env, cond.left, False)
                return None if env is None else \
                    self._refine(env, cond.right, False)
            if cond.op in _COMPARISONS:
                return self._refine_compare(env, cond, sense)
            return env
        if isinstance(cond, c_ast.Id):
            # `if (x)`: false means x == 0
            if not sense:
                return self._refine_var(env, cond,
                                        Interval.const(0), "==")
            return self._refine_var(env, cond, Interval.const(0),
                                    "!=")
        return env

    def _refine_compare(self, env, cond, sense):
        op = cond.op
        if not sense:
            op = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                  "==": "!=", "!=": "=="}[op]
        left_val = self._eval(cond.left, env.copy())
        right_val = self._eval(cond.right, env.copy())
        if isinstance(right_val, Interval):
            env = self._refine_var(env, cond.left, right_val, op)
            if env is None:
                return None
        if isinstance(left_val, Interval):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                       "==": "==", "!=": "!="}[op]
            env = self._refine_var(env, cond.right, left_val,
                                   flipped)
        return env

    def _refine_var(self, env, expr, bound, op):
        """Meet a variable's interval with ``<var> <op> [bound]``."""
        expr = _peel_casts(expr)
        if not isinstance(expr, c_ast.Id):
            return env
        func = self._current
        info = self.variables.get(expr.name, func.name)
        if info is None or info.ctype is None or \
                info.function != func.name or info.ctype.is_array:
            return env
        key = (info.function, info.name)
        state = env.get(key)
        if state is None:
            return env
        value = state.value
        if value is None:
            if not (info.ctype.is_integral or info.ctype.is_floating):
                return env
            value = Interval.top()
        if not isinstance(value, Interval):
            return env
        if op == "<":
            refined = value.clamp_below(bound.hi, strict=True)
        elif op == "<=":
            refined = value.clamp_below(bound.hi, strict=False)
        elif op == ">":
            refined = value.clamp_above(bound.lo, strict=True)
        elif op == ">=":
            refined = value.clamp_above(bound.lo, strict=False)
        elif op == "==":
            refined = value.meet(bound)
        elif op == "!=":
            refined = value
            if bound.is_const:
                if value.is_const and value == bound:
                    refined = None
                elif value.lo == bound.lo:
                    refined = value.clamp_above(bound.lo + 1,
                                                strict=False)
                elif value.hi == bound.hi:
                    refined = value.clamp_below(bound.hi - 1,
                                                strict=False)
        else:
            return env
        if refined is None:
            return None   # comparison cannot hold: edge infeasible
        env.set(key, VarState(refined, state.init))
        return env


class _TypedNode:
    """Wraps a node with a known result type (compound assignments
    compute at the lvalue's type, not the operands')."""

    __slots__ = ("node", "ctype", "coord")

    def __init__(self, node, ctype):
        self.node = node
        self.ctype = ctype
        self.coord = getattr(node, "coord", None)


def _peel_casts(node):
    while isinstance(node, c_ast.Cast):
        node = node.expr
    return node


def _has_side_effects(expr):
    for node in c_ast.walk(expr):
        if isinstance(node, (c_ast.Assignment, c_ast.FuncCall)):
            return True
        if isinstance(node, c_ast.UnaryOp) and \
                node.op in ("++", "--", "p++", "p--"):
            return True
    return False


def _element_type(ctype):
    if ctype is None:
        return None
    if ctype.is_array or ctype.is_pointer:
        return getattr(ctype, "base", None)
    return None


def _strip_to_element(ctype):
    """The element type stored through a dereference of ``ctype``'s
    object (arrays and pointers peel one level; scalars are
    themselves)."""
    element = _element_type(ctype)
    return element if element is not None else ctype


def _promote(ctype):
    if ctype is None:
        return None
    if ctype.is_integral and not ctype.is_pointer:
        try:
            if ctype.sizeof() < 4:
                return ctypes.INT
        except Exception:
            return ctype
    return ctype


def _usual_arithmetic(left, right):
    if left is None or right is None:
        return None
    if left.is_pointer or left.is_array:
        return left
    if right.is_pointer or right.is_array:
        return right
    if left.is_floating or right.is_floating:
        return left if left.is_floating else right
    left = _promote(left)
    right = _promote(right)
    try:
        return left if left.sizeof() >= right.sizeof() else right
    except Exception:
        return None


def _type_name(ctype):
    return getattr(ctype, "name", None) or str(ctype)


def _sum_hi(a, b):
    if a == INF or b == INF:
        return INF
    return a + b
