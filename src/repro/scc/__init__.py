"""Intel SCC hardware model: mesh, caches, MPB, DRAM, power.

This substrate replaces the physical 48-core SCC the paper evaluates on
(§5.1).  It is a *cycle-cost* model, not a cycle-accurate RTL model: each
memory access is priced in core cycles from first-order properties —
cache hit/miss, mesh hop distance, MPB vs DRAM, and memory-controller
queueing — which are the properties the paper's Figures 6.1-6.3 turn on.
"""

from repro.scc.config import SCCConfig, Table61Config, OperatingPoint
from repro.scc.chip import SCCChip
from repro.scc.mesh import Mesh
from repro.scc.cache import Cache
from repro.scc.dram import MemoryController
from repro.scc.mpb import MessagePassingBuffer
from repro.scc.memmap import AddressSpace, Segment, SegmentKind
from repro.scc.power import PowerModel

__all__ = [
    "SCCConfig",
    "Table61Config",
    "OperatingPoint",
    "SCCChip",
    "Mesh",
    "Cache",
    "MemoryController",
    "MessagePassingBuffer",
    "AddressSpace",
    "Segment",
    "SegmentKind",
    "PowerModel",
]
