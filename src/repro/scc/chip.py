"""The assembled chip: cores with private caches, mesh, MPB, DRAM.

``access_cost(core, addr, kind, size)`` is the single timing entry point
the interpreter uses.  Pricing:

* PRIVATE address — L1/L2 lookup; on miss, mesh hops to the core's
  memory controller plus DRAM latency (with queueing);
* SHARED address  — never cached (non-coherent chip): every access pays
  mesh + controller + queueing, plus the uncached-bypass penalty;
* MPB address     — SRAM round trip plus mesh hops to the owning tile.
"""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_EVENTS
from repro.scc.cache import Cache
from repro.scc.dram import MemoryController
from repro.scc.lut import WINDOW_BYTES, LookupTable
from repro.scc.memmap import (
    MPB_BASE,
    PRIVATE_BASE,
    PRIVATE_WINDOW,
    SHARED_BASE,
    SHARED_SIZE,
    AddressSpace,
    SegmentKind,
)
from repro.scc.mesh import Mesh
from repro.scc.mpb import MessagePassingBuffer
from repro.scc.power import PowerModel


class CoreState:
    """Per-core caches and counters."""

    def __init__(self, core_id, config):
        self.core_id = core_id
        self.l1 = Cache(config.l1_size, config.l1_line_size,
                        config.l1_assoc, "core%d-L1" % core_id)
        self.l2 = Cache(config.l2_size, config.l2_line_size,
                        config.l2_assoc, "core%d-L2" % core_id)
        self.accesses = {kind: 0 for kind in SegmentKind}

    def __repr__(self):
        return "CoreState(%d, L1 %s)" % (self.core_id, self.l1.stats)


class SCCChip:
    """One simulated SCC."""

    def __init__(self, config):
        self.config = config
        self.mesh = Mesh(config)
        self.address_space = AddressSpace(config)
        self.mpb = MessagePassingBuffer(config, self.mesh)
        self.cores = [CoreState(i, config) for i in range(config.num_cores)]
        self.controllers = [MemoryController(i, config)
                            for i in range(config.num_memory_controllers)]
        self.power = PowerModel(config)
        self.luts = [LookupTable(i, config, self.mesh)
                     for i in range(config.num_cores)]
        self._reconfigured_cores = set()
        self._lock = threading.Lock()
        # Epoch for the interpreter's per-site memory-access inline
        # caches: any change to address translation (LUT reprogramming,
        # a new split window) bumps it, invalidating every cached
        # (window, cost-function) entry.  Increments are GIL-atomic.
        self.mem_epoch = 0
        self._site_cache_holders = []   # weakrefs to Interpreters
        self.address_space.on_layout_change(self._bump_mem_epoch)
        # observability: every component's counters surface through one
        # registry; event tracing is a no-op until a run attaches a
        # tracer (repro.obs) — both near-zero cost when idle
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(
            "scc.chip", self._collect_metrics, self._reset_counters)
        self.events = NULL_EVENTS
        self.trace_pid = 0
        # fault injection (repro.faults): ``None`` means no injector is
        # attached and every hook below is a single dead branch, so an
        # un-faulted run prices accesses byte-identically
        self.faults = None
        # ECC scrubbing (repro.recovery.ecc): ``None`` means reads are
        # unprotected — flipped values reach the program as in PR 3
        self.ecc = None
        # race detection (repro.race): ``None`` means no detector is
        # attached and the interpreter/runtime hooks are dead branches
        self.race = None
        # cycle attribution (repro.obs.attribution): ``None`` means no
        # engine is attached; every cost method below classifies its
        # cycles behind one is-not-None probe, and the fast-path
        # closures bake the probe result in at build time
        self.attribution = None

    # -- observability ----------------------------------------------------------

    def attach_events(self, tracer, pid=0, name=None):
        """Route simulator events (cache misses, mesh routes, MPB
        traffic) into ``tracer``, tagged with Chrome-trace process
        ``pid``."""
        self.events = tracer
        self.trace_pid = pid
        if name is not None:
            tracer.set_process(pid, name)

    def detach_events(self):
        self.events = NULL_EVENTS

    def _collect_metrics(self):
        """Publish every component counter as registry samples."""
        samples = []
        for state in self.cores:
            for level, cache in (("l1", state.l1), ("l2", state.l2)):
                stats = cache.stats
                if stats.accesses == 0 and stats.evictions == 0:
                    continue
                labels = {"core": state.core_id, "level": level}
                samples.append(("counter", "scc_cache_hits", labels,
                                stats.hits))
                samples.append(("counter", "scc_cache_misses", labels,
                                stats.misses))
                samples.append(("counter", "scc_cache_evictions",
                                labels, stats.evictions))
            for kind, count in state.accesses.items():
                if count:
                    samples.append((
                        "counter", "scc_core_accesses",
                        {"core": state.core_id, "segment": str(kind)},
                        count))
        for controller in self.controllers:
            labels = {"controller": controller.index}
            if controller.stats.accesses:
                samples.append(("counter", "scc_dram_reads", labels,
                                controller.stats.reads))
                samples.append(("counter", "scc_dram_writes", labels,
                                controller.stats.writes))
                samples.append(("counter", "scc_dram_busy_cycles",
                                labels, controller.stats.busy_cycles))
            if controller.active_requesters:
                samples.append(("gauge", "scc_dram_active_requesters",
                                labels,
                                len(controller.active_requesters)))
        samples.append(("counter", "scc_mpb_reads", {},
                        self.mpb.stats.reads))
        samples.append(("counter", "scc_mpb_writes", {},
                        self.mpb.stats.writes))
        samples.append(("counter", "scc_mpb_bytes_moved", {},
                        self.mpb.stats.bytes_moved))
        if self.mpb.stats.corrupted_reads:
            samples.append(("counter", "scc_mpb_corrupted_reads", {},
                            self.mpb.stats.corrupted_reads))
        if self.mpb.stats.ecc_corrected:
            samples.append(("counter", "scc_mpb_ecc_corrected", {},
                            self.mpb.stats.ecc_corrected))
        dram_ecc = sum(controller.stats.ecc_corrected
                       for controller in self.controllers)
        if dram_ecc:
            samples.append(("counter", "scc_dram_ecc_corrected", {},
                            dram_ecc))
        if self.mesh.drops:
            samples.append(("counter", "scc_mesh_dropped_messages", {},
                            self.mesh.drops))
        if self.mesh.retries:
            samples.append(("counter", "scc_mesh_retried_messages", {},
                            self.mesh.retries))
        for link, count in sorted(self.mesh.link_traffic.items()):
            samples.append(("counter", "scc_mesh_link_traffic",
                            {"link": "%s->%s" % link}, count))
        for (link, segment), count in sorted(
                self.mesh.segment_traffic.items()):
            samples.append(("counter", "scc_mesh_segment_traffic",
                            {"link": "%s->%s" % link,
                             "segment": segment}, count))
        for owner, row in sorted(self.mpb.owner_traffic_totals()
                                 .items()):
            labels = {"owner": owner}
            samples.append(("counter", "scc_mpb_owner_reads", labels,
                            row["reads"]))
            samples.append(("counter", "scc_mpb_owner_writes", labels,
                            row["writes"]))
            samples.append(("counter", "scc_mpb_owner_bytes", labels,
                            row["bytes"]))
        samples.append(("gauge", "scc_power_watts", {},
                        self.power.chip_power_watts()))
        samples.append(("gauge", "scc_mem_epoch", {}, self.mem_epoch))
        return samples

    def _reset_counters(self):
        """Zero every component accumulator (registry reset hook)."""
        for state in self.cores:
            state.l1.stats.reset()
            state.l2.stats.reset()
            for kind in state.accesses:
                state.accesses[kind] = 0
        for controller in self.controllers:
            controller.stats.reset()
        self.mpb.stats.reset()
        self.mpb.owner_traffic.clear()
        self.mesh.reset_traffic()

    # -- parallel backend: counter shipping --------------------------------

    def counter_state(self):
        """Every component accumulator as plain picklable data.

        The parallel backend (``repro.sim.parallel``) runs each shard on
        a full chip replica in a worker process; at shutdown the worker
        ships this dict home and the coordinator folds it into the
        parent chip with :meth:`merge_counter_state`, so one parent
        snapshot reports exactly what the sequential run would."""
        cores = []
        for state in self.cores:
            cores.append({
                "l1": state.l1.stats.snapshot(),
                "l2": state.l2.stats.snapshot(),
                "accesses": {kind.value: count
                             for kind, count in state.accesses.items()
                             if count},
            })
        controllers = {}
        for controller in self.controllers:
            stats = controller.stats
            controllers[controller.index] = {
                "reads": stats.reads, "writes": stats.writes,
                "busy_cycles": stats.busy_cycles,
                "ecc_corrected": stats.ecc_corrected,
            }
        mpb = self.mpb.stats
        return {
            "cores": cores,
            "controllers": controllers,
            "mpb": {"reads": mpb.reads, "writes": mpb.writes,
                    "bytes_moved": mpb.bytes_moved,
                    "corrupted_reads": mpb.corrupted_reads,
                    "ecc_corrected": mpb.ecc_corrected},
            "mpb_owner_traffic": [
                (owner, requester, counts[0], counts[1], counts[2])
                for (owner, requester), counts
                in self.mpb.owner_traffic.items()],
            "mesh": {
                "drops": self.mesh.drops,
                "retries": self.mesh.retries,
                "link_traffic": list(self.mesh.link_traffic.items()),
                "segment_traffic": list(
                    self.mesh.segment_traffic.items()),
            },
        }

    def merge_counter_state(self, shipped):
        """Fold a worker replica's :meth:`counter_state` into this chip.

        Strictly additive: per-core cache/access counters come from the
        single worker that ran the core (every other replica leaves them
        zero), while chip-wide MPB/DRAM/mesh accumulators sum across
        workers."""
        for state, row in zip(self.cores, shipped["cores"]):
            for level, stats in (("l1", state.l1.stats),
                                 ("l2", state.l2.stats)):
                delta = row[level]
                stats.hits += delta["hits"]
                stats.misses += delta["misses"]
                stats.evictions += delta["evictions"]
            for value, count in row["accesses"].items():
                state.accesses[SegmentKind(value)] += count
        for index, delta in shipped["controllers"].items():
            stats = self.controllers[index].stats
            stats.reads += delta["reads"]
            stats.writes += delta["writes"]
            stats.busy_cycles += delta["busy_cycles"]
            stats.ecc_corrected += delta["ecc_corrected"]
        mpb = self.mpb.stats
        delta = shipped["mpb"]
        mpb.reads += delta["reads"]
        mpb.writes += delta["writes"]
        mpb.bytes_moved += delta["bytes_moved"]
        mpb.corrupted_reads += delta["corrupted_reads"]
        mpb.ecc_corrected += delta["ecc_corrected"]
        for owner, requester, reads, writes, nbytes in \
                shipped["mpb_owner_traffic"]:
            cell = self.mpb._owner_cell(owner, requester)
            cell[0] += reads
            cell[1] += writes
            cell[2] += nbytes
        mesh = shipped["mesh"]
        self.mesh.drops += mesh["drops"]
        self.mesh.retries += mesh["retries"]
        for link, count in mesh["link_traffic"]:
            self.mesh.link_traffic[link] = \
                self.mesh.link_traffic.get(link, 0) + count
        for key, count in mesh["segment_traffic"]:
            self.mesh.segment_traffic[key] = \
                self.mesh.segment_traffic.get(key, 0) + count

    # -- requester registration (contention model input) -----------------------

    def activate_core(self, core):
        controller = self.controllers[self.mesh.controller_of(core)]
        with self._lock:
            controller.register_requester(core)

    def deactivate_core(self, core):
        controller = self.controllers[self.mesh.controller_of(core)]
        with self._lock:
            controller.unregister_requester(core)

    # -- the timing entry point ---------------------------------------------------

    def configure_window(self, core, addr, shared):
        """Reprogram the LUT window holding ``addr`` for ``core`` —
        the paper's page-table mechanism for flipping DRAM between
        private-cacheable and shared-uncacheable."""
        lut = self.luts[core]
        entry = lut.mark_shared(addr) if shared else lut.mark_private(addr)
        self._reconfigured_cores.add(core)
        self._bump_mem_epoch()
        if shared:
            self.cores[core].l1.invalidate_all()  # stale lines die
            self.cores[core].l2.invalidate_all()
        return entry

    def _bump_mem_epoch(self):
        """Invalidate every interpreter's memory-access inline caches.

        Push-style invalidation: entries carry no epoch stamp and pay
        no versioning check per access; instead each registered holder's
        cache dict is cleared here, on the (rare) LUT/layout change."""
        self.mem_epoch += 1
        holders = self._site_cache_holders
        if holders:
            live = []
            for ref in holders:
                holder = ref()
                if holder is not None:
                    holder._site_cache.clear()
                    live.append(ref)
            self._site_cache_holders = live

    def register_site_cache_holder(self, interp):
        """Register ``interp`` (weakly) for inline-cache invalidation
        on ``mem_epoch`` bumps."""
        import weakref
        self._site_cache_holders.append(weakref.ref(interp))

    def access_cost(self, core, addr, kind="read", size=4, ts=0):
        """Cycle cost of one memory access from ``core``.  ``ts`` is
        the requester's simulated clock, used only to timestamp trace
        events when a tracer is attached."""
        state = self.cores[core]
        segment, physical = self.address_space.resolve(addr)
        if core in self._reconfigured_cores:
            entry = self.luts[core].lookup(addr)
            if entry is not None and entry.kind in (
                    SegmentKind.PRIVATE, SegmentKind.SHARED):
                segment = entry.kind
        state.accesses[segment] += 1

        if segment is SegmentKind.PRIVATE:
            cost = self._private_cost(core, state, physical, ts)
        elif segment is SegmentKind.SHARED:
            cost = self._shared_cost(core, kind, ts)
        else:
            cost = self._mpb_cost(core, physical, kind, size, ts)
        if self.faults is not None:
            extra = self.faults.latency_extra(core, segment, kind,
                                              cost, ts)
            if extra and self.attribution is not None:
                self.attribution.add(core, "fault_latency", extra)
            cost += extra
        return cost

    def access_fastpath(self, core, addr):
        """Build one inline-cache entry for ``addr`` as seen by
        ``core``: ``(lo, hi, fn)`` where ``fn(addr, kind, ts)`` prices
        any scalar (size-4) access with ``lo <= addr < hi``, with side
        effects identical to :meth:`access_cost`.

        The entry bakes in the result of address resolution — segment
        classification, split-window translation (as an affine delta),
        and the LUT override for reconfigured cores — and delegates to
        the live ``_private_cost``/``_shared_cost``/``_mpb_cost`` so
        cache state, DRAM queueing, traffic recording, and trace events
        stay exact.  Entries are only valid for the ``mem_epoch`` at
        build time; callers must rebuild when the epoch changes."""
        segment, physical = self.address_space.resolve(addr)
        delta = physical - addr
        if segment is SegmentKind.PRIVATE:
            lo = PRIVATE_BASE
            hi = PRIVATE_BASE + PRIVATE_WINDOW * self.config.num_cores
        elif segment is SegmentKind.SHARED:
            if SHARED_BASE <= addr < SHARED_BASE + SHARED_SIZE:
                lo, hi = SHARED_BASE, SHARED_BASE + SHARED_SIZE
            else:  # shared-DRAM tail of a split window
                split = self.address_space._split_of(addr)
                lo = split.base + split.on_chip_bytes
                hi = split.end
        else:
            if MPB_BASE <= addr < MPB_BASE + self.config.mpb_total_bytes:
                lo = MPB_BASE
                hi = MPB_BASE + self.config.mpb_total_bytes
            else:  # MPB head of a split window
                split = self.address_space._split_of(addr)
                lo, hi = split.base, split.base + split.on_chip_bytes
        if core in self._reconfigured_cores:
            # LUT overrides are per 16MB window (with the lookup's
            # modulo-256 aliasing); clamp so the override baked into
            # this entry is constant across its whole range.
            window_lo = addr - addr % WINDOW_BYTES
            lo = max(lo, window_lo)
            hi = min(hi, window_lo + WINDOW_BYTES)
            entry = self.luts[core].lookup(addr)
            if entry is not None and entry.kind in (
                    SegmentKind.PRIVATE, SegmentKind.SHARED):
                segment = entry.kind

        state = self.cores[core]
        if segment is SegmentKind.PRIVATE:
            # the L1 hit probe is fully inlined (one dict lookup plus
            # an LRU move_to_end): cache internals are never replaced —
            # configure_window clears ``sets`` in place and counter
            # resets mutate the same CacheStats — so the bound dict and
            # stats objects stay valid for the life of the entry.  The
            # miss branch touches nothing and delegates to
            # _private_cost, whose own L1 probe records the miss.
            # Attribution adds no code here at all: every L1/L2 hit
            # costs a constant, so the engine derives the hit classes
            # from the caches' own hit counters.
            l1 = state.l1

            def fn(addr, kind, ts, _acc=state.accesses,
                   _seg=SegmentKind.PRIVATE, _ls=l1.line_size,
                   _ns=l1.num_sets, _sets=l1.sets, _stats=l1.stats,
                   _l1_hit=self.config.l1_hit_cycles,
                   _slow=self._private_cost, _state=state,
                   _core=core, _delta=delta):
                _acc[_seg] += 1
                addr += _delta
                line = addr // _ls
                cache_set = _sets.get(line % _ns)
                if cache_set is not None:
                    tag = line // _ns
                    if tag in cache_set:
                        cache_set.move_to_end(tag)
                        _stats.hits += 1
                        return _l1_hit
                return _slow(_core, _state, addr, ts)
        elif segment is SegmentKind.SHARED:
            # routing is static per core: controller id, hop count, and
            # route endpoints are baked in; queue depth and the event
            # sink stay live reads
            controller_id = self.mesh.controller_of(core)
            hops = self.mesh.hops_to_controller(core, controller_id)

            def fn(addr, kind, ts, _acc=state.accesses,
                   _seg=SegmentKind.SHARED, _mesh=self.mesh,
                   _src=self.mesh.coords_of(core),
                   _dst=self.mesh.controller_coords(controller_id),
                   _cycles=self.controllers[controller_id].access_cycles,
                   _hops=hops, _chip=self, _core=core,
                   _mc="MC%d" % controller_id,
                   _penalty=self.config.uncached_shared_penalty,
                   _hop_part=hops * self.config.mesh_cycles_per_hop,
                   _attr=self.attribution,
                   _attr_hop=(None if self.attribution is None else
                              self.attribution.cell(core, "mesh_hop")),
                   _attr_dram=(None if self.attribution is None else
                               self.attribution.cell(core,
                                                     "dram_shared"))):
                _acc[_seg] += 1
                if _mesh.record_traffic:
                    _mesh.record_route(_src, _dst, "shared")
                cost = _cycles(kind, _hops)
                if _attr is not None:
                    _attr_hop[0] += _hop_part
                    _attr_dram[0] += cost - _hop_part + _penalty
                events = _chip.events
                if events.enabled:
                    events.instant(
                        _core, ts, "mesh_route", "mesh",
                        {"to": _mc, "hops": _hops, "kind": kind,
                         "segment": "shared"}, pid=_chip.trace_pid)
                return cost + _penalty
        else:
            # same inline L1 hit probe as the private entry; read
            # misses fall back to Cache.access, which re-probes and
            # records the miss before the tail runs
            l1 = state.l1

            def fn(addr, kind, ts, _acc=state.accesses,
                   _seg=SegmentKind.MPB, _l1=l1.access, _ls=l1.line_size,
                   _ns=l1.num_sets, _sets=l1.sets, _stats=l1.stats,
                   _l1_hit=self.config.l1_hit_cycles,
                   _tail=self._mpb_tail, _core=core, _delta=delta,
                   _probe=(None if self.attribution is None else
                           self.attribution.probe_cell(core))):
                _acc[_seg] += 1
                addr += _delta
                if kind == "read":
                    line = addr // _ls
                    cache_set = _sets.get(line % _ns)
                    if cache_set is not None:
                        tag = line // _ns
                        if tag in cache_set:
                            cache_set.move_to_end(tag)
                            _stats.hits += 1
                            return _l1_hit
                    _l1(addr)  # records the miss and fills the line
                else:
                    # write-through: the probe fills the line but the
                    # charged cycles are the MPB tail's, so attribution
                    # must not count this hit as l1_hit
                    if _l1(addr) and _probe is not None:
                        _probe[0] += 1
                return _tail(_core, addr, kind, 4, ts)
        return lo, hi, fn

    def _private_cost(self, core, state, addr, ts=0):
        # L1/L2 hits need no attribution hook: they cost a constant,
        # so the engine derives the hit classes from the cache stats
        if state.l1.access(addr):
            return self.config.l1_hit_cycles
        if state.l2.access(addr):
            return self.config.l2_hit_cycles
        return self._private_miss(core, ts)

    def _private_miss(self, core, ts):
        controller_id = self.mesh.controller_of(core)
        hops = self.mesh.hops_to_controller(core, controller_id)
        if self.events.enabled:
            self.events.instant(
                core, ts, "cache_miss", "cache",
                {"level": "L2", "controller": controller_id,
                 "hops": hops}, pid=self.trace_pid)
        cost = self.controllers[controller_id].access_cycles("read", hops)
        attr = self.attribution
        if attr is not None:
            hop_part = hops * self.config.mesh_cycles_per_hop
            attr.add(core, "mesh_hop", hop_part)
            attr.add(core, "dram_private", cost - hop_part)
        return cost

    def _shared_cost(self, core, kind, ts=0):
        controller_id = self.mesh.controller_of(core)
        hops = self.mesh.hops_to_controller(core, controller_id)
        if self.mesh.record_traffic:
            self.mesh.record_route(
                self.mesh.coords_of(core),
                self.mesh.controller_coords(controller_id), "shared")
        cost = self.controllers[controller_id].access_cycles(kind, hops)
        attr = self.attribution
        if attr is not None:
            hop_part = hops * self.config.mesh_cycles_per_hop
            attr.add(core, "mesh_hop", hop_part)
            attr.add(core, "dram_shared",
                     cost - hop_part
                     + self.config.uncached_shared_penalty)
        if self.events.enabled:
            self.events.instant(
                core, ts, "mesh_route", "mesh",
                {"to": "MC%d" % controller_id, "hops": hops,
                 "kind": kind, "segment": "shared"},
                pid=self.trace_pid)
        return cost + self.config.uncached_shared_penalty

    def _mpb_cost(self, core, addr, kind, size, ts=0):
        # On the real SCC, MPB data is L1-cacheable under the special
        # MPBT tag (software invalidates when needed); reads mostly hit
        # L1, which is the bulk of the on-chip win in Figure 6.2.
        state = self.cores[core]
        if kind == "read" and state.l1.access(addr):
            return self.config.l1_hit_cycles
        if kind == "write":
            # write-through: the probe fills the line but the charged
            # cycles are the MPB tail's — attribution must not count
            # this hit as l1_hit
            if state.l1.access(addr) and self.attribution is not None:
                self.attribution.probe_cell(core)[0] += 1
        return self._mpb_tail(core, addr, kind, size, ts)

    def _mpb_tail(self, core, addr, kind, size, ts):
        offset = self.address_space.mpb_offset(addr)
        if self.mesh.record_traffic or self.events.enabled:
            owner = self.mpb.owner_of_offset(offset)
            if self.mesh.record_traffic:
                self.mesh.record_route(self.mesh.coords_of(core),
                                       self.mesh.coords_of(owner),
                                       "mpb")
            if self.events.enabled:
                self.events.instant(
                    core, ts, "mesh_route", "mesh",
                    {"to": "core%d-mpb" % owner,
                     "hops": self.mesh.hops(core, owner), "kind": kind,
                     "segment": "mpb"}, pid=self.trace_pid)
        return self.mpb.access_cycles(core, offset, kind, size)

    # -- synchronization costs -------------------------------------------------------

    def barrier_cost(self, num_cores):
        """Cycle cost of an RCCE barrier over ``num_cores`` UEs."""
        return (self.config.barrier_base_cycles
                + num_cores * self.config.barrier_per_core_cycles)

    def lock_cost(self, core, owner_core):
        """Test-and-set register access on ``owner_core``'s tile."""
        hops = self.mesh.hops(core, owner_core)
        return (self.config.mpb_base_cycles
                + hops * self.config.mesh_cycles_per_hop)

    # -- reporting --------------------------------------------------------------------

    def cache_stats(self, core):
        state = self.cores[core]
        return {"l1": state.l1.stats, "l2": state.l2.stats}

    def controller_stats(self):
        return {c.index: c.stats for c in self.controllers}

    def __repr__(self):
        return "SCCChip(%r)" % (self.config,)
