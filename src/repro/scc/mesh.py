"""The SCC's 6x4 tile mesh with XY (dimension-ordered) routing.

Core numbering follows the SCC convention: two cores per tile, tile
``t = core // 2`` at coordinates ``(t % columns, t // columns)``.
The four DDR3 memory controllers sit at the mesh edges (Figure 5.1);
each serves the quadrant of tiles nearest to it, so "tile locality
impacts memory access time relative to each memory controller".
"""


class Mesh:
    """Geometry and routing-distance model.

    When ``record_traffic`` is enabled (it is opt-in: one lock per
    recorded route), every priced route increments per-link counters so
    :func:`hot_links` can show where the mesh is loaded.
    """

    def __init__(self, config):
        self.config = config
        self.record_traffic = False
        self.link_traffic = {}
        # per-link traffic split by address segment ("shared"/"mpb"),
        # keyed (link, segment); only populated for routes whose
        # pricing site passes a segment label
        self.segment_traffic = {}
        self._traffic_lock = None
        # messages lost to injected link faults (repro.faults); the
        # increment is GIL-atomic like the other counters
        self.drops = 0
        # retransmissions issued by the recovery layer's send retry
        self.retries = 0

    def record_drop(self):
        """Count one injected message drop (the access pays a full
        retransmission; the mesh only keeps the tally)."""
        self.drops += 1

    def record_retry(self):
        """Count one recovery-layer retransmission of a dropped
        RCCE_send message (repro.recovery.retry)."""
        self.retries += 1

    def enable_traffic_recording(self):
        import threading
        self.record_traffic = True
        if self._traffic_lock is None:
            self._traffic_lock = threading.Lock()

    def record_route(self, from_coords, to_coords, segment=None):
        """Count each XY link between two tile coordinates; when the
        pricing site labels the route with its address ``segment``,
        the per-segment split feeds the chip report's heatmap."""
        if not self.record_traffic:
            return
        path = self._coords_route(from_coords, to_coords)
        with self._traffic_lock:
            for link in zip(path, path[1:]):
                self.link_traffic[link] = \
                    self.link_traffic.get(link, 0) + 1
                if segment is not None:
                    key = (link, segment)
                    self.segment_traffic[key] = \
                        self.segment_traffic.get(key, 0) + 1

    def reset_traffic(self):
        """Clear the per-link counters (recording stays as-is)."""
        if self._traffic_lock is not None:
            with self._traffic_lock:
                self.link_traffic.clear()
                self.segment_traffic.clear()
        else:
            self.link_traffic.clear()
            self.segment_traffic.clear()
        self.drops = 0
        self.retries = 0

    def hot_links(self, top=5):
        """The ``top`` busiest links as ((from, to), count) pairs."""
        return sorted(self.link_traffic.items(),
                      key=lambda item: -item[1])[:top]

    def _coords_route(self, from_coords, to_coords):
        ax, ay = from_coords
        bx, by = to_coords
        path = [(ax, ay)]
        x, y = ax, ay
        step_x = 1 if bx > ax else -1
        while x != bx:
            x += step_x
            path.append((x, y))
        step_y = 1 if by > ay else -1
        while y != by:
            y += step_y
            path.append((x, y))
        return path

    # -- coordinates ------------------------------------------------------------

    def tile_of(self, core):
        self._check_core(core)
        return core // self.config.cores_per_tile

    def coords_of(self, core):
        tile = self.tile_of(core)
        return (tile % self.config.mesh_columns,
                tile // self.config.mesh_columns)

    def _check_core(self, core):
        if not 0 <= core < self.config.num_cores:
            raise ValueError("core %r out of range 0..%d"
                             % (core, self.config.num_cores - 1))

    # -- routing ----------------------------------------------------------------

    def hops(self, core_a, core_b):
        """Manhattan distance between two cores' tiles (XY routing)."""
        ax, ay = self.coords_of(core_a)
        bx, by = self.coords_of(core_b)
        return abs(ax - bx) + abs(ay - by)

    def route(self, core_a, core_b):
        """The (x, y) tile coordinates along the XY route, inclusive."""
        return self._coords_route(self.coords_of(core_a),
                                  self.coords_of(core_b))

    # -- memory controllers -------------------------------------------------------

    def controller_coords(self, controller):
        """Controllers at the left/right edges, rows 0 and rows-1."""
        count = self.config.num_memory_controllers
        if not 0 <= controller < count:
            raise ValueError("controller %r out of range" % controller)
        last_col = self.config.mesh_columns - 1
        last_row = self.config.mesh_rows - 1
        corners = [(0, 0), (last_col, 0), (0, last_row),
                   (last_col, last_row)]
        return corners[controller % 4]

    def controller_of(self, core):
        """The nearest controller (ties to the lower index) — the SCC's
        default quadrant mapping."""
        cx, cy = self.coords_of(core)
        best = 0
        best_distance = None
        for controller in range(self.config.num_memory_controllers):
            mx, my = self.controller_coords(controller)
            distance = abs(cx - mx) + abs(cy - my)
            if best_distance is None or distance < best_distance:
                best = controller
                best_distance = distance
        return best

    def hops_to_controller(self, core, controller=None):
        if controller is None:
            controller = self.controller_of(core)
        cx, cy = self.coords_of(core)
        mx, my = self.controller_coords(controller)
        return abs(cx - mx) + abs(cy - my)

    def cores_per_controller(self, active_cores=None):
        """How many (active) cores map to each controller."""
        if active_cores is None:
            active_cores = range(self.config.num_cores)
        counts = {c: 0 for c in range(self.config.num_memory_controllers)}
        for core in active_cores:
            counts[self.controller_of(core)] += 1
        return counts
