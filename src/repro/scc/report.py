"""Chip statistics reporting.

Aggregates the counters every subsystem keeps (cache hit rates, memory
controller traffic and occupancy, MPB traffic, per-segment access mix,
power draw) into one structured report — the simulator's answer to the
performance-counter infrastructure the related work (Bellosa &
Steckermeier [3], Weissman [31]) builds on.
"""

from repro.obs.metrics import series_value
from repro.scc.memmap import SegmentKind


def chip_report(chip, active_cores=None):
    """A nested dict of every counter worth looking at.

    Built entirely from the chip's metrics-registry snapshot — the one
    unified counter surface — rather than reaching into component
    internals; the rendered output is unchanged (golden-tested).
    """
    snapshot = chip.metrics.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    cores = set(active_cores) if active_cores is not None \
        else set(range(chip.config.num_cores))
    report = {
        "config": {
            "cores": chip.config.num_cores,
            "core_freq_mhz": chip.config.core_freq_mhz,
            "mesh_freq_mhz": chip.config.mesh_freq_mhz,
            "dram_freq_mhz": chip.config.dram_freq_mhz,
        },
        "cores": {},
        "controllers": {},
        "mpb": {
            "reads": series_value(counters, "scc_mpb_reads"),
            "writes": series_value(counters, "scc_mpb_writes"),
            "bytes_moved": series_value(counters,
                                        "scc_mpb_bytes_moved"),
        },
        "power_watts": series_value(gauges, "scc_power_watts"),
    }

    # cores with any priced access, from the per-segment access mix
    mixes = {}
    for row in counters.get("scc_core_accesses", ()):
        core = row["labels"]["core"]
        if core in cores:
            mixes.setdefault(core, {})[row["labels"]["segment"]] = \
                row["value"]
    for core in sorted(mixes):
        stats = {"accesses": mixes[core]}
        for level in ("l1", "l2"):
            hits = series_value(counters, "scc_cache_hits",
                                core=core, level=level)
            misses = series_value(counters, "scc_cache_misses",
                                  core=core, level=level)
            accesses = hits + misses
            stats["%s_accesses" % level] = accesses
            stats["%s_hit_rate" % level] = \
                hits / accesses if accesses else 0.0
        report["cores"][core] = stats

    # per-segment mesh-link traffic and per-owner MPB traffic: both
    # opt-in recordings (`repro analyze --bottlenecks` turns them on),
    # so these tables are empty — and render nothing — on normal runs
    mesh_segments = {}
    for row in counters.get("scc_mesh_segment_traffic", ()):
        link = row["labels"]["link"]
        mesh_segments.setdefault(link, {})[
            row["labels"]["segment"]] = row["value"]
    report["mesh_segments"] = mesh_segments
    mpb_owners = {}
    for metric, field in (("scc_mpb_owner_reads", "reads"),
                          ("scc_mpb_owner_writes", "writes"),
                          ("scc_mpb_owner_bytes", "bytes")):
        for row in counters.get(metric, ()):
            owner = row["labels"]["owner"]
            mpb_owners.setdefault(
                owner, {"reads": 0, "writes": 0, "bytes": 0})[field] = \
                row["value"]
    report["mpb_owners"] = mpb_owners

    for row in counters.get("scc_dram_reads", ()):
        controller = row["labels"]["controller"]
        report["controllers"][controller] = {
            "reads": row["value"],
            "writes": series_value(counters, "scc_dram_writes",
                                   controller=controller),
            "busy_cycles": series_value(counters,
                                        "scc_dram_busy_cycles",
                                        controller=controller),
            "active_requesters": series_value(
                gauges, "scc_dram_active_requesters",
                controller=controller),
        }
    return report


def render_report(report):
    """Human-readable rendering of :func:`chip_report`."""
    lines = []
    config = report["config"]
    lines.append("chip: %d cores @ %d MHz (mesh %d, DDR3 %d)"
                 % (config["cores"], config["core_freq_mhz"],
                    config["mesh_freq_mhz"], config["dram_freq_mhz"]))
    lines.append("power: %.1f W" % report["power_watts"])
    if report["cores"]:
        lines.append("cores:")
        for core, stats in sorted(report["cores"].items()):
            mix = ", ".join("%s=%d" % (kind, count)
                            for kind, count
                            in sorted(stats["accesses"].items()))
            lines.append("  core %2d: L1 %5.1f%% of %-8d L2 %5.1f%% "
                         "of %-8d [%s]"
                         % (core, 100 * stats["l1_hit_rate"],
                            stats["l1_accesses"],
                            100 * stats["l2_hit_rate"],
                            stats["l2_accesses"], mix))
    if report["controllers"]:
        lines.append("memory controllers:")
        for index, stats in sorted(report["controllers"].items()):
            lines.append("  MC%d: %d reads, %d writes, %d busy cycles, "
                         "%d active requesters"
                         % (index, stats["reads"], stats["writes"],
                            stats["busy_cycles"],
                            stats["active_requesters"]))
    mpb = report["mpb"]
    if mpb["reads"] or mpb["writes"]:
        lines.append("mpb: %d reads, %d writes, %d bytes"
                     % (mpb["reads"], mpb["writes"],
                        mpb["bytes_moved"]))
    if report.get("mesh_segments"):
        lines.append("mesh link traffic by segment (hops):")
        segments = sorted({segment
                           for per_link in report["mesh_segments"].values()
                           for segment in per_link})
        lines.append("  %-16s %s" % ("link", "  ".join(
            "%8s" % segment for segment in segments)))
        for link, per_link in sorted(report["mesh_segments"].items()):
            lines.append("  %-16s %s" % (link, "  ".join(
                "%8d" % per_link.get(segment, 0)
                for segment in segments)))
    if report.get("mpb_owners"):
        lines.append("mpb traffic by owning core:")
        lines.append("  %-8s %8s %8s %10s"
                     % ("owner", "reads", "writes", "bytes"))
        for owner, stats in sorted(report["mpb_owners"].items()):
            lines.append("  core %-3d %8d %8d %10d"
                         % (owner, stats["reads"], stats["writes"],
                            stats["bytes"]))
    return "\n".join(lines)


def segment_mix(chip, core):
    """Fraction of the core's accesses hitting each segment kind."""
    state = chip.cores[core]
    total = sum(state.accesses.values())
    if total == 0:
        return {kind: 0.0 for kind in SegmentKind}
    return {kind: count / total
            for kind, count in state.accesses.items()}
