"""Chip statistics reporting.

Aggregates the counters every subsystem keeps (cache hit rates, memory
controller traffic and occupancy, MPB traffic, per-segment access mix,
power draw) into one structured report — the simulator's answer to the
performance-counter infrastructure the related work (Bellosa &
Steckermeier [3], Weissman [31]) builds on.
"""

from repro.scc.memmap import SegmentKind


def chip_report(chip, active_cores=None):
    """A nested dict of every counter worth looking at."""
    cores = list(active_cores) if active_cores is not None \
        else list(range(chip.config.num_cores))
    report = {
        "config": {
            "cores": chip.config.num_cores,
            "core_freq_mhz": chip.config.core_freq_mhz,
            "mesh_freq_mhz": chip.config.mesh_freq_mhz,
            "dram_freq_mhz": chip.config.dram_freq_mhz,
        },
        "cores": {},
        "controllers": {},
        "mpb": {
            "reads": chip.mpb.stats.reads,
            "writes": chip.mpb.stats.writes,
            "bytes_moved": chip.mpb.stats.bytes_moved,
        },
        "power_watts": chip.power.chip_power_watts(),
    }
    for core in cores:
        state = chip.cores[core]
        if not any(state.accesses.values()):
            continue
        report["cores"][core] = {
            "l1_hit_rate": state.l1.stats.hit_rate,
            "l1_accesses": state.l1.stats.accesses,
            "l2_hit_rate": state.l2.stats.hit_rate,
            "l2_accesses": state.l2.stats.accesses,
            "accesses": {str(kind): count
                         for kind, count in state.accesses.items()
                         if count},
        }
    for controller in chip.controllers:
        if controller.stats.accesses == 0:
            continue
        report["controllers"][controller.index] = {
            "reads": controller.stats.reads,
            "writes": controller.stats.writes,
            "busy_cycles": controller.stats.busy_cycles,
            "active_requesters": len(controller.active_requesters),
        }
    return report


def render_report(report):
    """Human-readable rendering of :func:`chip_report`."""
    lines = []
    config = report["config"]
    lines.append("chip: %d cores @ %d MHz (mesh %d, DDR3 %d)"
                 % (config["cores"], config["core_freq_mhz"],
                    config["mesh_freq_mhz"], config["dram_freq_mhz"]))
    lines.append("power: %.1f W" % report["power_watts"])
    if report["cores"]:
        lines.append("cores:")
        for core, stats in sorted(report["cores"].items()):
            mix = ", ".join("%s=%d" % (kind, count)
                            for kind, count
                            in sorted(stats["accesses"].items()))
            lines.append("  core %2d: L1 %5.1f%% of %-8d L2 %5.1f%% "
                         "of %-8d [%s]"
                         % (core, 100 * stats["l1_hit_rate"],
                            stats["l1_accesses"],
                            100 * stats["l2_hit_rate"],
                            stats["l2_accesses"], mix))
    if report["controllers"]:
        lines.append("memory controllers:")
        for index, stats in sorted(report["controllers"].items()):
            lines.append("  MC%d: %d reads, %d writes, %d busy cycles, "
                         "%d active requesters"
                         % (index, stats["reads"], stats["writes"],
                            stats["busy_cycles"],
                            stats["active_requesters"]))
    mpb = report["mpb"]
    if mpb["reads"] or mpb["writes"]:
        lines.append("mpb: %d reads, %d writes, %d bytes"
                     % (mpb["reads"], mpb["writes"],
                        mpb["bytes_moved"]))
    return "\n".join(lines)


def segment_mix(chip, core):
    """Fraction of the core's accesses hitting each segment kind."""
    state = chip.cores[core]
    total = sum(state.accesses.values())
    if total == 0:
        return {kind: 0.0 for kind in SegmentKind}
    return {kind: count / total
            for kind, count in state.accesses.items()}
