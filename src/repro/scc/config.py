"""SCC configuration: geometry, frequencies, latencies, power points.

Defaults reproduce Table 6.1 of the paper (800 MHz cores, 1600 MHz mesh,
1066 MHz DDR3) on the 48-core, 6x4-tile geometry of §5.1 / Figure 5.1.
Latency constants are first-order numbers from the SCC programmer's view
(Mattson et al. [19], van der Wijngaart et al. [29]): L1 hits are
single-cycle, L2 hits tens of cycles, MPB accesses cost a small constant
plus 2 mesh cycles per hop each way, and DRAM costs the controller
round-trip plus queueing.
"""


class OperatingPoint:
    """One voltage/frequency/power point from §5.1."""

    __slots__ = ("voltage", "freq_mhz", "power_watts")

    def __init__(self, voltage, freq_mhz, power_watts):
        self.voltage = voltage
        self.freq_mhz = freq_mhz
        self.power_watts = power_watts

    def __repr__(self):
        return "OperatingPoint(%.2fV, %dMHz, %dW)" % (
            self.voltage, self.freq_mhz, self.power_watts)


# §5.1: "operating ranges of 0.7 V and 125 MHz (25 W at 50C) up to
# 1.14 V and 1 GHz (125 W at 50C)"
MIN_OPERATING_POINT = OperatingPoint(0.70, 125, 25)
MAX_OPERATING_POINT = OperatingPoint(1.14, 1000, 125)


class SCCConfig:
    """Complete chip configuration; every constant is sweepable."""

    def __init__(
        self,
        num_cores=48,
        mesh_columns=6,
        mesh_rows=4,
        cores_per_tile=2,
        core_freq_mhz=800,
        mesh_freq_mhz=1600,
        dram_freq_mhz=1066,
        # caches (per core): P54C 16 KB L1 (8I+8D), 256 KB unified L2
        l1_size=8 * 1024,
        l1_line_size=32,
        l1_assoc=2,
        l2_size=256 * 1024,
        l2_line_size=32,
        l2_assoc=4,
        # on-die shared SRAM
        mpb_bytes_per_core=8 * 1024,
        # off-chip memory controllers
        num_memory_controllers=4,
        max_dram_gb=64,
        # latencies in CORE cycles unless stated otherwise
        l1_hit_cycles=1,
        l2_hit_cycles=18,
        dram_base_cycles=46,          # controller + DDR3 access
        dram_queue_cycles=8,          # added per concurrent requester
        mpb_base_cycles=15,           # local MPB round trip
        mesh_cycles_per_hop=4,        # 2 mesh cycles/hop at 2x core clock
        uncached_shared_penalty=8,    # bypassing L2 on shared pages
        context_switch_cycles=4000,   # Linux thread switch on a P54C core
        scheduler_quantum_cycles=800 * 1000 * 10,  # ~10ms at 800 MHz
        barrier_base_cycles=400,      # RCCE barrier fixed cost
        barrier_per_core_cycles=60,   # flag polling per participant
    ):
        if num_cores > mesh_columns * mesh_rows * cores_per_tile:
            raise ValueError("core count exceeds mesh capacity")
        if num_memory_controllers < 1:
            raise ValueError("need at least one memory controller")
        self.num_cores = num_cores
        self.mesh_columns = mesh_columns
        self.mesh_rows = mesh_rows
        self.cores_per_tile = cores_per_tile
        self.core_freq_mhz = core_freq_mhz
        self.mesh_freq_mhz = mesh_freq_mhz
        self.dram_freq_mhz = dram_freq_mhz
        self.l1_size = l1_size
        self.l1_line_size = l1_line_size
        self.l1_assoc = l1_assoc
        self.l2_size = l2_size
        self.l2_line_size = l2_line_size
        self.l2_assoc = l2_assoc
        self.mpb_bytes_per_core = mpb_bytes_per_core
        self.num_memory_controllers = num_memory_controllers
        self.max_dram_gb = max_dram_gb
        self.l1_hit_cycles = l1_hit_cycles
        self.l2_hit_cycles = l2_hit_cycles
        self.dram_base_cycles = dram_base_cycles
        self.dram_queue_cycles = dram_queue_cycles
        self.mpb_base_cycles = mpb_base_cycles
        self.mesh_cycles_per_hop = mesh_cycles_per_hop
        self.uncached_shared_penalty = uncached_shared_penalty
        self.context_switch_cycles = context_switch_cycles
        self.scheduler_quantum_cycles = scheduler_quantum_cycles
        self.barrier_base_cycles = barrier_base_cycles
        self.barrier_per_core_cycles = barrier_per_core_cycles

    @property
    def num_tiles(self):
        return self.mesh_columns * self.mesh_rows

    @property
    def mpb_total_bytes(self):
        return self.mpb_bytes_per_core * self.num_cores

    def seconds_from_cycles(self, cycles):
        return cycles / (self.core_freq_mhz * 1e6)

    def table_6_1(self, execution_units=32):
        """Rows of the paper's Table 6.1 for this configuration."""
        return [
            {"parameter": "Core Frequency",
             "rcce": "%d MHz" % self.core_freq_mhz,
             "pthreads": "%d MHz" % self.core_freq_mhz},
            {"parameter": "Communication Network",
             "rcce": "%d MHz" % self.mesh_freq_mhz,
             "pthreads": "%d MHz" % self.mesh_freq_mhz},
            {"parameter": "Off-chip Memory",
             "rcce": "%d MHz" % self.dram_freq_mhz,
             "pthreads": "%d MHz" % self.dram_freq_mhz},
            {"parameter": "Execution Units",
             "rcce": "%d cores" % execution_units,
             "pthreads": "%d threads" % execution_units},
        ]

    def __repr__(self):
        return ("SCCConfig(%d cores, %dx%d mesh, core %d MHz, "
                "mesh %d MHz, DDR3 %d MHz)" % (
                    self.num_cores, self.mesh_columns, self.mesh_rows,
                    self.core_freq_mhz, self.mesh_freq_mhz,
                    self.dram_freq_mhz))


def Table61Config():
    """The exact experimental configuration of Table 6.1."""
    return SCCConfig(core_freq_mhz=800, mesh_freq_mhz=1600,
                     dram_freq_mhz=1066)
