"""The on-die Message Passing Buffer: 8 KB of SRAM per core, 384 KB
total, addressable by every core over the mesh (paper §5.1).

An MPB access costs the small SRAM round-trip plus mesh hops from the
requesting core to the tile that owns the target MPB segment — so
"the locality for core-to-MPB is much closer than that of core-to-DRAM"
(paper §6), and bulk transfers amortize the fixed cost.
"""


class MPBStats:
    __slots__ = ("reads", "writes", "bytes_moved", "corrupted_reads",
                 "ecc_corrected")

    def __init__(self):
        self.reads = 0
        self.writes = 0
        self.bytes_moved = 0
        # reads whose value an injected fault flipped (repro.faults)
        self.corrupted_reads = 0
        # flipped reads the scrubber repaired (repro.recovery.ecc)
        self.ecc_corrected = 0

    def reset(self):
        self.reads = 0
        self.writes = 0
        self.bytes_moved = 0
        self.corrupted_reads = 0
        self.ecc_corrected = 0

    def __repr__(self):
        return "MPBStats(r=%d, w=%d, bytes=%d, corrupted=%d, ecc=%d)" \
            % (self.reads, self.writes, self.bytes_moved,
               self.corrupted_reads, self.ecc_corrected)


class MessagePassingBuffer:
    """The chip-wide MPB, divided into per-core segments."""

    def __init__(self, config, mesh):
        self.config = config
        self.mesh = mesh
        self.stats = MPBStats()
        # cycle attribution (repro.obs.attribution): the MPB knows the
        # hop/SRAM split of every cost it prices, so the engine hooks
        # here; ``None`` keeps both cost methods branch-free.  The
        # (mesh_hop, mpb) cell pair is cached per requester — cells
        # are zeroed in place on reset, so entries never go stale
        # while one engine is attached (attach/detach clears them)
        self.attribution = None
        self._attr_cells = {}
        # opt-in per-owner-segment utilization for the chip report's
        # MPB heatmap; keyed (owner, requester) so each entry has a
        # single writer thread
        self.record_owner_traffic = False
        self.owner_traffic = {}

    def enable_owner_tracking(self):
        self.record_owner_traffic = True

    def owner_traffic_totals(self):
        """Aggregate the (owner, requester) split to per-owner
        ``{"reads": r, "writes": w, "bytes": b}`` rows."""
        totals = {}
        for (owner, _), counts in self.owner_traffic.items():
            row = totals.setdefault(owner,
                                    {"reads": 0, "writes": 0,
                                     "bytes": 0})
            row["reads"] += counts[0]
            row["writes"] += counts[1]
            row["bytes"] += counts[2]
        return totals

    def _owner_cell(self, owner, requester):
        key = (owner, requester)
        cell = self.owner_traffic.get(key)
        if cell is None:
            cell = self.owner_traffic[key] = [0, 0, 0]
        return cell

    @property
    def segment_bytes(self):
        return self.config.mpb_bytes_per_core

    @property
    def total_bytes(self):
        return self.config.mpb_total_bytes

    def owner_of_offset(self, offset):
        """Which core's segment a chip-wide MPB offset falls in."""
        if not 0 <= offset < self.total_bytes:
            raise ValueError("MPB offset %r out of range" % offset)
        return offset // self.segment_bytes

    def access_cycles(self, requester, offset, kind, size=4):
        """Cycle cost for ``requester`` touching the MPB at ``offset``."""
        owner = self.owner_of_offset(offset)
        hops = self.mesh.hops(requester, owner)
        hop_part = hops * self.config.mesh_cycles_per_hop
        cost = self.config.mpb_base_cycles + hop_part
        if kind == "read":
            self.stats.reads += 1
        else:
            self.stats.writes += 1
        self.stats.bytes_moved += size
        if self.attribution is not None:
            cells = self._attr_cells.get(requester)
            if cells is None:
                cells = self._attr_cells[requester] = (
                    self.attribution.cell(requester, "mesh_hop"),
                    self.attribution.cell(requester, "mpb"))
            cells[0][0] += hop_part
            cells[1][0] += cost - hop_part
        if self.record_owner_traffic:
            cell = self._owner_cell(owner, requester)
            cell[0 if kind == "read" else 1] += 1
            cell[2] += size
        return cost

    def bulk_transfer_cycles(self, requester, offset, nbytes):
        """Bulk copy cost: one fixed round trip plus pipelined words
        (Figure 6.2's 'transfers to and from the MPB may be done in
        bulk copy ... further improving performance')."""
        owner = self.owner_of_offset(offset)
        hops = self.mesh.hops(requester, owner)
        hop_part = hops * self.config.mesh_cycles_per_hop
        words = max((nbytes + 3) // 4, 1)
        cost = (self.config.mpb_base_cycles + hop_part
                + words)  # one cycle per pipelined word
        self.stats.bytes_moved += nbytes
        if self.attribution is not None:
            cells = self._attr_cells.get(requester)
            if cells is None:
                cells = self._attr_cells[requester] = (
                    self.attribution.cell(requester, "mesh_hop"),
                    self.attribution.cell(requester, "mpb"))
            cells[0][0] += hop_part
            cells[1][0] += cost - hop_part
        if self.record_owner_traffic:
            cell = self._owner_cell(owner, requester)
            cell[1] += 1
            cell[2] += nbytes
        return cost
