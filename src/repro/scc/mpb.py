"""The on-die Message Passing Buffer: 8 KB of SRAM per core, 384 KB
total, addressable by every core over the mesh (paper §5.1).

An MPB access costs the small SRAM round-trip plus mesh hops from the
requesting core to the tile that owns the target MPB segment — so
"the locality for core-to-MPB is much closer than that of core-to-DRAM"
(paper §6), and bulk transfers amortize the fixed cost.
"""


class MPBStats:
    __slots__ = ("reads", "writes", "bytes_moved", "corrupted_reads",
                 "ecc_corrected")

    def __init__(self):
        self.reads = 0
        self.writes = 0
        self.bytes_moved = 0
        # reads whose value an injected fault flipped (repro.faults)
        self.corrupted_reads = 0
        # flipped reads the scrubber repaired (repro.recovery.ecc)
        self.ecc_corrected = 0

    def reset(self):
        self.reads = 0
        self.writes = 0
        self.bytes_moved = 0
        self.corrupted_reads = 0
        self.ecc_corrected = 0

    def __repr__(self):
        return "MPBStats(r=%d, w=%d, bytes=%d, corrupted=%d, ecc=%d)" \
            % (self.reads, self.writes, self.bytes_moved,
               self.corrupted_reads, self.ecc_corrected)


class MessagePassingBuffer:
    """The chip-wide MPB, divided into per-core segments."""

    def __init__(self, config, mesh):
        self.config = config
        self.mesh = mesh
        self.stats = MPBStats()

    @property
    def segment_bytes(self):
        return self.config.mpb_bytes_per_core

    @property
    def total_bytes(self):
        return self.config.mpb_total_bytes

    def owner_of_offset(self, offset):
        """Which core's segment a chip-wide MPB offset falls in."""
        if not 0 <= offset < self.total_bytes:
            raise ValueError("MPB offset %r out of range" % offset)
        return offset // self.segment_bytes

    def access_cycles(self, requester, offset, kind, size=4):
        """Cycle cost for ``requester`` touching the MPB at ``offset``."""
        owner = self.owner_of_offset(offset)
        hops = self.mesh.hops(requester, owner)
        cost = (self.config.mpb_base_cycles
                + hops * self.config.mesh_cycles_per_hop)
        if kind == "read":
            self.stats.reads += 1
        else:
            self.stats.writes += 1
        self.stats.bytes_moved += size
        return cost

    def bulk_transfer_cycles(self, requester, offset, nbytes):
        """Bulk copy cost: one fixed round trip plus pipelined words
        (Figure 6.2's 'transfers to and from the MPB may be done in
        bulk copy ... further improving performance')."""
        owner = self.owner_of_offset(offset)
        hops = self.mesh.hops(requester, owner)
        words = max((nbytes + 3) // 4, 1)
        cost = (self.config.mpb_base_cycles
                + hops * self.config.mesh_cycles_per_hop
                + words)  # one cycle per pipelined word
        self.stats.bytes_moved += nbytes
        return cost
