"""The SCC's per-core lookup tables (LUTs).

On the real chip every core translates its 32-bit addresses through a
256-entry LUT; each entry maps a 16 MB window to a destination on the
mesh — a DDR3 controller (private or shared DRAM), a tile's MPB, or
the system interface — and carries the *bypass* bit that decides
whether the window is cacheable.  Reprogramming LUT entries is exactly
how SCC software turns DRAM pages "shared-among-all-cores or
private-to-a-core" (paper §1).

The simulator's :class:`~repro.scc.memmap.AddressSpace` already encodes
the default configuration by address range; this module provides the
*mechanism view*: per-core tables, the default SCC image, and
reconfiguration — e.g. remapping a core's private window to shared
uncacheable DRAM, which the chip model then honours in its timing
(``SCCChip.configure_window``).
"""

from repro.scc.memmap import (
    MPB_BASE,
    PRIVATE_BASE,
    PRIVATE_WINDOW,
    SHARED_BASE,
    SHARED_SIZE,
    SegmentKind,
)

WINDOW_BYTES = 16 * 1024 * 1024   # one LUT entry maps 16 MB
NUM_ENTRIES = 256


class LUTEntry:
    """One 16 MB window mapping."""

    __slots__ = ("index", "kind", "destination", "cacheable",
                 "system_base")

    def __init__(self, index, kind, destination, cacheable,
                 system_base):
        self.index = index
        self.kind = kind                # SegmentKind of the target
        self.destination = destination  # controller id or tile id
        self.cacheable = cacheable
        self.system_base = system_base

    def __repr__(self):
        return ("LUTEntry(%d: %s via %s, %scacheable, 0x%x)"
                % (self.index, self.kind, self.destination,
                   "" if self.cacheable else "un", self.system_base))


class LookupTable:
    """One core's 256-entry LUT."""

    def __init__(self, core_id, config, mesh):
        self.core_id = core_id
        self.config = config
        self.mesh = mesh
        self.entries = {}
        self._install_defaults()

    def _install_defaults(self):
        """The default SCC image: a private cacheable DRAM window
        behind the core's nearest controller, a shared uncacheable
        DRAM window, and the MPB window."""
        controller = self.mesh.controller_of(self.core_id)
        private_base = PRIVATE_BASE + self.core_id * PRIVATE_WINDOW
        self.map_window(self._entry_of(private_base),
                        SegmentKind.PRIVATE, controller,
                        cacheable=True, system_base=private_base)
        shared_windows = max(SHARED_SIZE // WINDOW_BYTES, 1)
        for offset in range(shared_windows):
            base = SHARED_BASE + offset * WINDOW_BYTES
            self.map_window(self._entry_of(base), SegmentKind.SHARED,
                            controller, cacheable=False,
                            system_base=base)
        self.map_window(self._entry_of(MPB_BASE), SegmentKind.MPB,
                        self.mesh.tile_of(self.core_id),
                        cacheable=True, system_base=MPB_BASE)

    @staticmethod
    def _entry_of(addr):
        return (addr // WINDOW_BYTES) % NUM_ENTRIES

    def map_window(self, index, kind, destination, cacheable,
                   system_base):
        if not 0 <= index < NUM_ENTRIES:
            raise ValueError("LUT index %r out of range" % index)
        entry = LUTEntry(index, kind, destination, cacheable,
                         system_base)
        self.entries[index] = entry
        return entry

    def lookup(self, addr):
        """The entry translating ``addr``, or None if unmapped."""
        return self.entries.get(self._entry_of(addr))

    def translate(self, addr):
        """Core address -> (system address, entry).  Raises KeyError
        for unmapped windows, like a real bus error."""
        entry = self.lookup(addr)
        if entry is None:
            raise KeyError("core %d has no LUT mapping for 0x%x"
                           % (self.core_id, addr))
        return entry.system_base + addr % WINDOW_BYTES, entry

    def mark_shared(self, addr):
        """Flip the window holding ``addr`` to shared-uncacheable (the
        page-table reconfiguration of paper §1)."""
        index = self._entry_of(addr)
        entry = self.entries.get(index)
        controller = self.mesh.controller_of(self.core_id)
        return self.map_window(
            index, SegmentKind.SHARED, controller, cacheable=False,
            system_base=entry.system_base if entry
            else addr - addr % WINDOW_BYTES)

    def mark_private(self, addr):
        """Flip the window holding ``addr`` to private-cacheable."""
        index = self._entry_of(addr)
        entry = self.entries.get(index)
        controller = self.mesh.controller_of(self.core_id)
        return self.map_window(
            index, SegmentKind.PRIVATE, controller, cacheable=True,
            system_base=entry.system_base if entry
            else addr - addr % WINDOW_BYTES)
