"""First-order power model for the SCC's voltage/frequency domains.

§5.1 gives the envelope: 0.7 V / 125 MHz at 25 W up to 1.14 V / 1 GHz
at 125 W (both at 50°C).  Dynamic power scales with V²·f; the residual
at the minimum point is treated as static/uncore power.  Frequencies
may be set chip-wide, per power domain, or per call — matching the
three mechanisms the paper lists.
"""

from repro.scc.config import MAX_OPERATING_POINT, MIN_OPERATING_POINT


class PowerDomain:
    """A group of tiles sharing one voltage/frequency setting."""

    def __init__(self, index, tiles, voltage, freq_mhz):
        self.index = index
        self.tiles = list(tiles)
        self.voltage = voltage
        self.freq_mhz = freq_mhz

    def __repr__(self):
        return "PowerDomain(%d: %d tiles @ %.2fV/%dMHz)" % (
            self.index, len(self.tiles), self.voltage, self.freq_mhz)


class PowerModel:
    """Chip power as a function of per-domain V/f settings."""

    # SCC groups tiles into 6 voltage domains (2x3 tiles each)
    NUM_DOMAINS = 6

    def __init__(self, config):
        self.config = config
        tiles_per_domain = max(config.num_tiles // self.NUM_DOMAINS, 1)
        self.domains = []
        for index in range(self.NUM_DOMAINS):
            start = index * tiles_per_domain
            tiles = list(range(start,
                               min(start + tiles_per_domain,
                                   config.num_tiles)))
            self.domains.append(PowerDomain(
                index, tiles, MAX_OPERATING_POINT.voltage,
                config.core_freq_mhz))
        self._calibrate()

    def _calibrate(self):
        """Solve P = static + k*V^2*f against the two §5.1 endpoints."""
        low, high = MIN_OPERATING_POINT, MAX_OPERATING_POINT
        low_activity = low.voltage ** 2 * low.freq_mhz
        high_activity = high.voltage ** 2 * high.freq_mhz
        self._k = ((high.power_watts - low.power_watts)
                   / (high_activity - low_activity))
        self._static_watts = low.power_watts - self._k * low_activity

    def set_chip_frequency(self, freq_mhz, voltage=None):
        """Mechanism 1: set every domain at once."""
        for domain in self.domains:
            domain.freq_mhz = freq_mhz
            if voltage is not None:
                domain.voltage = voltage

    def set_domain_frequency(self, index, freq_mhz, voltage=None):
        """Mechanism 2: set one power domain."""
        domain = self.domains[index]
        domain.freq_mhz = freq_mhz
        if voltage is not None:
            domain.voltage = voltage

    def domain_of_tile(self, tile):
        for domain in self.domains:
            if tile in domain.tiles:
                return domain
        raise ValueError("tile %r not in any domain" % tile)

    def chip_power_watts(self):
        """Total chip power under the current settings."""
        total = self._static_watts
        tiles_total = max(self.config.num_tiles, 1)
        for domain in self.domains:
            share = len(domain.tiles) / tiles_total
            total += (self._k * domain.voltage ** 2
                      * domain.freq_mhz * share)
        return total

    def operating_point_power(self, voltage, freq_mhz):
        """Power if the whole chip ran at (voltage, freq)."""
        return self._static_watts + self._k * voltage ** 2 * freq_mhz
