"""Off-chip DDR3 memory controllers with a queueing contention model.

The SCC routes each core's DRAM traffic to one of four controllers;
with 32 active cores that is ≥8 cores per controller, which is exactly
the contention the paper blames for Dot Product and LU Decomposition
trailing the compute-bound benchmarks in Figure 6.1.

We model contention analytically: a controller access costs its base
latency plus ``queue_cycles`` for every *other* core currently
streaming through the same controller.  Runners declare which cores are
active; the model is deliberately first-order (an M/D/1-flavoured
linear approximation) because only the relative shape matters.
"""


class MemoryControllerStats:
    __slots__ = ("reads", "writes", "busy_cycles", "ecc_corrected")

    def __init__(self):
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0
        # flipped reads the scrubber repaired (repro.recovery.ecc)
        self.ecc_corrected = 0

    @property
    def accesses(self):
        return self.reads + self.writes

    def reset(self):
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0
        self.ecc_corrected = 0

    def __repr__(self):
        return "MemoryControllerStats(r=%d, w=%d, busy=%d)" % (
            self.reads, self.writes, self.busy_cycles)


class MemoryController:
    """One DDR3 controller."""

    def __init__(self, index, config):
        self.index = index
        self.config = config
        self.active_requesters = set()
        self.stats = MemoryControllerStats()

    def register_requester(self, core):
        self.active_requesters.add(core)

    def unregister_requester(self, core):
        self.active_requesters.discard(core)

    @property
    def queue_depth(self):
        """Concurrent streams other than the requester itself."""
        return max(len(self.active_requesters) - 1, 0)

    def access_cycles(self, kind, hops=0):
        """Cycle cost of one access through this controller."""
        base = self.config.dram_base_cycles
        mesh = hops * self.config.mesh_cycles_per_hop
        queue = self.queue_depth * self.config.dram_queue_cycles
        cost = base + mesh + queue
        if kind == "read":
            self.stats.reads += 1
        else:
            self.stats.writes += 1
        self.stats.busy_cycles += cost
        return cost

    def __repr__(self):
        return "MemoryController(%d, %d active)" % (
            self.index, len(self.active_requesters))
