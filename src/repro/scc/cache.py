"""Set-associative cache model with LRU replacement.

The SCC's caches are *non-coherent*: there is no snooping and no
directory.  Private pages are cacheable; shared pages bypass the caches
entirely (paper §1: "the data in the private pages are cache-able, but
the shared pages are not").  The bypass decision is made by the chip
model, not here — this class is a plain cache.
"""

from collections import OrderedDict


class CacheStats:
    __slots__ = ("hits", "misses", "evictions")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self):
        """Plain-dict copy, cheap enough for the attribution engine
        to take at every barrier entry (per-phase hit-rate deltas)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    def __repr__(self):
        return "CacheStats(hits=%d, misses=%d, rate=%.3f)" % (
            self.hits, self.misses, self.hit_rate)


class Cache:
    """One level of cache: ``size`` bytes, ``assoc`` ways, LRU."""

    def __init__(self, size, line_size, assoc, name="cache"):
        if size % (line_size * assoc) != 0:
            raise ValueError("size must be a multiple of line*assoc")
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.name = name
        self.num_sets = size // (line_size * assoc)
        # sets materialize lazily: {index: OrderedDict tag -> True},
        # so building a 48-core chip does not allocate ~100k empty sets
        self.sets = {}
        self.stats = CacheStats()

    def _locate(self, addr):
        line = addr // self.line_size
        return line % self.num_sets, line // self.num_sets

    def access(self, addr):
        """Touch ``addr``; returns True on hit, False on miss (and
        fills the line, evicting LRU if needed)."""
        # _locate() is inlined here: this is the single hottest call in
        # the whole simulator (every private/MPB access, twice on L1
        # misses), and the hit path below is already just one dict
        # probe plus an LRU move_to_end
        line = addr // self.line_size
        index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self.sets.get(index)
        if cache_set is None:
            cache_set = self.sets[index] = OrderedDict()
        elif tag in cache_set:
            cache_set.move_to_end(tag)
            self.stats.hits += 1
            return True
        stats = self.stats
        stats.misses += 1
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
            stats.evictions += 1
        cache_set[tag] = True
        return False

    def contains(self, addr):
        index, tag = self._locate(addr)
        return tag in self.sets.get(index, ())

    def invalidate_all(self):
        self.sets.clear()

    def __repr__(self):
        return "Cache(%s: %dB, %d-way, %dB lines)" % (
            self.name, self.size, self.assoc, self.line_size)
