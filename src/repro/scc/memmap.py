"""Address-space layout for the simulated SCC.

Three segment kinds, mirroring how SCC page tables configure memory
(paper §1: off-chip pages are private-and-cacheable or
shared-and-uncacheable; plus the on-die MPB):

* ``PRIVATE``  — per-core DRAM windows, cacheable;
* ``SHARED``   — chip-wide DRAM, uncacheable (no coherence!);
* ``MPB``      — the 384 KB on-die SRAM, uncacheable but fast.

Addresses are plain integers; bump allocators hand out space.
"""

from enum import Enum


class SegmentKind(Enum):
    PRIVATE = "private"
    SHARED = "shared"
    MPB = "mpb"

    def __str__(self):
        return self.value

    # Enum.__hash__ is a Python-level function hashing the member name;
    # members compare by identity, so the C-level identity hash is both
    # consistent and much cheaper.  Per-segment access counters are
    # dicts keyed by these members and sit on the simulator's hot path.
    __hash__ = object.__hash__


PRIVATE_BASE = 0x1000_0000
PRIVATE_WINDOW = 16 * 1024 * 1024          # per-core private window
SHARED_BASE = 0x8000_0000
SHARED_SIZE = 256 * 1024 * 1024
MPB_BASE = 0xC000_0000
# virtual window for split allocations (part MPB, part shared DRAM):
# contiguous to the program, translated per-offset by the chip
SPLIT_BASE = 0xE000_0000
SPLIT_SIZE = 256 * 1024 * 1024


class Segment:
    """A contiguous allocated region."""

    __slots__ = ("kind", "base", "size", "owner", "label")

    def __init__(self, kind, base, size, owner=None, label=None):
        self.kind = kind
        self.base = base
        self.size = size
        self.owner = owner
        self.label = label

    @property
    def end(self):
        return self.base + self.size

    def __contains__(self, addr):
        return self.base <= addr < self.end

    def __repr__(self):
        return "Segment(%s, 0x%x..0x%x%s%s)" % (
            self.kind, self.base, self.end,
            ", core %s" % self.owner if self.owner is not None else "",
            ", %s" % self.label if self.label else "")


class OutOfMemoryError(Exception):
    """A bump allocator ran out of its segment."""


class SplitSegment:
    """A virtually-contiguous allocation whose first ``on_chip_bytes``
    live in the MPB and whose tail lives in shared DRAM — §4.4's
    "larger arrays may be allocated entirely in DRAM or split between
    DRAM and SRAM"."""

    __slots__ = ("base", "size", "on_chip_bytes", "mpb_segment",
                 "shared_segment", "label")

    def __init__(self, base, size, on_chip_bytes, mpb_segment,
                 shared_segment, label=None):
        self.base = base
        self.size = size
        self.on_chip_bytes = on_chip_bytes
        self.mpb_segment = mpb_segment
        self.shared_segment = shared_segment
        self.label = label

    @property
    def end(self):
        return self.base + self.size

    @property
    def kind(self):
        return SegmentKind.SHARED  # what it is to the programmer

    def resolve(self, addr):
        """(SegmentKind, physical address) for a virtual ``addr``."""
        offset = addr - self.base
        if offset < self.on_chip_bytes:
            return SegmentKind.MPB, self.mpb_segment.base + offset
        return (SegmentKind.SHARED,
                self.shared_segment.base + offset - self.on_chip_bytes)

    def __contains__(self, addr):
        return self.base <= addr < self.end

    def __repr__(self):
        return "SplitSegment(0x%x+%d, %dB on-chip%s)" % (
            self.base, self.size, self.on_chip_bytes,
            ", %s" % self.label if self.label else "")


class AddressSpace:
    """Classification + allocation over the three segment kinds."""

    def __init__(self, config):
        self.config = config
        self._private_next = {}
        self._shared_next = SHARED_BASE
        self._mpb_next = MPB_BASE
        self._split_next = SPLIT_BASE
        self.allocations = []
        self.split_segments = []  # sorted by base
        self._layout_listeners = []

    def on_layout_change(self, callback):
        """Invoke ``callback()`` whenever the address translation map
        changes (a new split window appears).  The chip uses this to
        invalidate the interpreter's per-site memory-access caches."""
        self._layout_listeners.append(callback)

    def _notify_layout_change(self):
        for callback in self._layout_listeners:
            callback()

    # -- classification ------------------------------------------------------

    def classify(self, addr):
        return self.resolve(addr)[0]

    def resolve(self, addr):
        """(SegmentKind, physical address).  Split-window addresses
        translate to their MPB or shared-DRAM backing; everything else
        is identity-mapped."""
        if PRIVATE_BASE <= addr < PRIVATE_BASE + \
                PRIVATE_WINDOW * self.config.num_cores:
            return SegmentKind.PRIVATE, addr
        if SHARED_BASE <= addr < SHARED_BASE + SHARED_SIZE:
            return SegmentKind.SHARED, addr
        if MPB_BASE <= addr < MPB_BASE + self.config.mpb_total_bytes:
            return SegmentKind.MPB, addr
        if SPLIT_BASE <= addr < SPLIT_BASE + SPLIT_SIZE:
            segment = self._split_of(addr)
            if segment is not None:
                return segment.resolve(addr)
        raise ValueError("address 0x%x is outside every segment" % addr)

    def _split_of(self, addr):
        import bisect
        bases = [segment.base for segment in self.split_segments]
        index = bisect.bisect_right(bases, addr) - 1
        if index < 0:
            return None
        segment = self.split_segments[index]
        return segment if addr in segment else None

    def private_owner(self, addr):
        """Which core's private window ``addr`` falls in."""
        return (addr - PRIVATE_BASE) // PRIVATE_WINDOW

    def mpb_offset(self, addr):
        return addr - MPB_BASE

    # -- allocation ------------------------------------------------------------

    @staticmethod
    def _align(value, alignment=8):
        return (value + alignment - 1) // alignment * alignment

    def alloc_private(self, core, nbytes, label=None):
        base = self._private_next.get(
            core, PRIVATE_BASE + core * PRIVATE_WINDOW)
        nbytes = max(self._align(nbytes), 8)
        if base + nbytes > PRIVATE_BASE + (core + 1) * PRIVATE_WINDOW:
            raise OutOfMemoryError(
                "core %d private window exhausted" % core)
        self._private_next[core] = base + nbytes
        segment = Segment(SegmentKind.PRIVATE, base, nbytes, core, label)
        self.allocations.append(segment)
        return segment

    def alloc_shared(self, nbytes, label=None):
        nbytes = max(self._align(nbytes), 8)
        if self._shared_next + nbytes > SHARED_BASE + SHARED_SIZE:
            raise OutOfMemoryError("shared DRAM exhausted")
        segment = Segment(SegmentKind.SHARED, self._shared_next, nbytes,
                          None, label)
        self._shared_next += nbytes
        self.allocations.append(segment)
        return segment

    def alloc_mpb(self, nbytes, label=None):
        nbytes = max(self._align(nbytes), 8)
        if self._mpb_next + nbytes > MPB_BASE + \
                self.config.mpb_total_bytes:
            raise OutOfMemoryError("MPB exhausted")
        segment = Segment(SegmentKind.MPB, self._mpb_next, nbytes,
                          None, label)
        self._mpb_next += nbytes
        self.allocations.append(segment)
        return segment

    def alloc_split(self, nbytes, on_chip_bytes, label=None):
        """Allocate ``nbytes`` with the first ``on_chip_bytes`` backed
        by MPB SRAM and the rest by shared DRAM, presented to the
        program as one contiguous range."""
        nbytes = max(self._align(nbytes), 8)
        on_chip_bytes = self._align(min(max(on_chip_bytes, 0), nbytes))
        if self._split_next + nbytes > SPLIT_BASE + SPLIT_SIZE:
            raise OutOfMemoryError("split window exhausted")
        mpb_segment = self.alloc_mpb(max(on_chip_bytes, 8),
                                     label and label + ".mpb")
        shared_segment = self.alloc_shared(
            max(nbytes - on_chip_bytes, 8),
            label and label + ".dram")
        segment = SplitSegment(self._split_next, nbytes, on_chip_bytes,
                               mpb_segment, shared_segment, label)
        self._split_next += nbytes
        self.split_segments.append(segment)
        self.allocations.append(segment)
        self._notify_layout_change()
        return segment

    def mpb_free_bytes(self):
        return MPB_BASE + self.config.mpb_total_bytes - self._mpb_next

    def shared_free_bytes(self):
        return SHARED_BASE + SHARED_SIZE - self._shared_next
