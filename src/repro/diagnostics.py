"""Structured pipeline diagnostics (graceful degradation support).

The five-stage framework historically crashed on the first malformed
construct.  In *lenient* mode the :class:`~repro.ir.passes.Driver`
converts per-pass failures into :class:`Diagnostic` records and keeps
going, so one bad construct yields a :class:`PipelineReport` covering
everything that could still be analysed, instead of a traceback.
Passes can also emit their own warnings through
``ProgramContext.diagnose``.

This module is deliberately dependency-free: it is imported by the
pass driver (``repro.ir.passes``), the framework facade, and the CLI.
"""

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 2, WARNING: 1, INFO: 0}


class Diagnostic:
    """One structured finding from a pipeline stage."""

    __slots__ = ("stage", "severity", "message", "filename", "line",
                 "column")

    def __init__(self, stage, severity, message, filename=None,
                 line=None, column=None):
        if severity not in _SEVERITY_RANK:
            raise ValueError("unknown severity %r" % severity)
        self.stage = stage
        self.severity = severity
        self.message = message
        self.filename = filename
        self.line = line
        self.column = column

    @classmethod
    def from_exception(cls, stage, exc):
        """Build an error diagnostic from a raised exception, keeping
        source coordinates when the exception carries them (the
        frontend's :class:`~repro.cfront.errors.CFrontError` does)."""
        message = getattr(exc, "message", None) or str(exc) \
            or type(exc).__name__
        return cls(stage, ERROR, "%s: %s" % (type(exc).__name__, message),
                   filename=getattr(exc, "filename", None),
                   line=getattr(exc, "line", None),
                   column=getattr(exc, "column", None))

    @classmethod
    def warning(cls, stage, message, **where):
        """A warning with optional filename/line/column keywords."""
        return cls(stage, WARNING, message, **where)

    @classmethod
    def error(cls, stage, message, **where):
        """An error with optional filename/line/column keywords."""
        return cls(stage, ERROR, message, **where)

    @classmethod
    def from_coord(cls, stage, severity, message, coord):
        """Build a diagnostic from an AST node's source coordinate."""
        return cls(stage, severity, message,
                   filename=getattr(coord, "filename", None),
                   line=getattr(coord, "line", None),
                   column=getattr(coord, "column", None))

    @property
    def is_error(self):
        return self.severity == ERROR

    def location(self):
        parts = []
        if self.filename:
            parts.append(str(self.filename))
        if self.line is not None:
            parts.append("line %d" % self.line)
        if self.column is not None:
            parts.append("col %d" % self.column)
        return ", ".join(parts)

    def format(self):
        where = self.location()
        suffix = " (%s)" % where if where else ""
        return "%s[%s]: %s%s" % (self.severity, self.stage,
                                 self.message, suffix)

    def as_dict(self):
        return {"stage": self.stage, "severity": self.severity,
                "message": self.message, "filename": self.filename,
                "line": self.line, "column": self.column}

    def __repr__(self):
        return "Diagnostic(%r)" % self.format()


class PipelineReport:
    """All diagnostics of one pipeline run, ready to render."""

    def __init__(self, diagnostics=()):
        self.diagnostics = list(diagnostics)

    @property
    def has_errors(self):
        return any(d.is_error for d in self.diagnostics)

    @property
    def ok(self):
        return not self.has_errors

    def counts(self):
        result = {ERROR: 0, WARNING: 0, INFO: 0}
        for diagnostic in self.diagnostics:
            result[diagnostic.severity] += 1
        return result

    def by_stage(self):
        result = {}
        for diagnostic in self.diagnostics:
            result.setdefault(diagnostic.stage, []).append(diagnostic)
        return result

    def render(self):
        if not self.diagnostics:
            return "pipeline report: clean (no diagnostics)"
        counts = self.counts()
        lines = ["pipeline report: %d error(s), %d warning(s), "
                 "%d note(s)" % (counts[ERROR], counts[WARNING],
                                 counts[INFO])]
        for diagnostic in self.diagnostics:
            lines.append("  " + diagnostic.format())
        return "\n".join(lines)

    def as_dict(self):
        return {"counts": self.counts(),
                "diagnostics": [d.as_dict() for d in self.diagnostics]}

    def __len__(self):
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)
