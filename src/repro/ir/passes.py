"""AnalysisPass / TransformPass / Driver — the paper's CETUS pass model.

Each pass operates on a :class:`ProgramContext` that wraps the translation
unit plus all facts accumulated by earlier passes.  ``TransformPass``
instances get a consistency check after they run (the paper notes CETUS's
pass classes "perform some consistency checking to ensure that the IR
remains in a self-consistent state").
"""

from repro.cfront import c_ast
from repro.diagnostics import Diagnostic


class PassError(Exception):
    """A pass precondition or postcondition was violated."""


class ProgramContext:
    """The shared state threaded through a pass pipeline."""

    def __init__(self, unit):
        self.unit = unit
        self.facts = {}
        self.pass_log = []
        # structured findings accumulated across the pipeline — see
        # repro.diagnostics (graceful degradation)
        self.diagnostics = []

    def require(self, key):
        if key not in self.facts:
            raise PassError("required fact %r not computed; "
                            "run its producing pass first" % key)
        return self.facts[key]

    def provide(self, key, value):
        self.facts[key] = value
        return value

    def diagnose(self, stage, severity, message, coord=None):
        """Record a structured :class:`Diagnostic` (with source
        coordinates when ``coord`` is an AST node's)."""
        if coord is not None:
            diagnostic = Diagnostic.from_coord(stage, severity, message,
                                               coord)
        else:
            diagnostic = Diagnostic(stage, severity, message)
        self.diagnostics.append(diagnostic)
        return diagnostic


class Pass:
    """Base pass: subclasses set ``name`` and implement ``run``."""

    name = "pass"
    requires = ()
    provides = ()

    def run(self, context):
        raise NotImplementedError

    def profile_stats(self, context):
        """Stage-specific statistics for the pipeline profiler
        (``repro.obs.profile``); called after the pass ran."""
        return {}

    def __call__(self, context):
        for key in self.requires:
            context.require(key)
        result = self.run(context)
        for key in self.provides:
            if key not in context.facts:
                raise PassError(
                    "pass %r promised fact %r but did not provide it"
                    % (self.name, key))
        context.pass_log.append(self.name)
        return result


class AnalysisPass(Pass):
    """A pass that only reads the IR and records facts."""


class TransformPass(Pass):
    """A pass that mutates the IR; re-links parents and re-checks shape."""

    def __call__(self, context):
        result = super().__call__(context)
        c_ast.link_parents(context.unit)
        _check_consistency(context.unit)
        return result


def _check_consistency(unit):
    """Cheap structural invariants after a transform."""
    for node in c_ast.walk(unit):
        for field in node._fields:
            value = getattr(node, field, None)
            if isinstance(value, list):
                for item in value:
                    if item is None:
                        raise PassError(
                            "None left inside list field %r of %s"
                            % (field, type(node).__name__))
    for func in unit.functions():
        if func.body is None or not isinstance(func.body, c_ast.Compound):
            raise PassError("function %r lost its body" % func.name)


class Driver:
    """Runs a pipeline of passes in series (paper §5.3's Driver class).

    When a :class:`repro.obs.profile.PipelineProfiler` is attached,
    every pass runs inside a wall-time span annotated with the pass's
    ``profile_stats``.

    With ``strict=False`` a pass that raises no longer aborts the
    pipeline: the exception becomes an error :class:`Diagnostic` on the
    context and the remaining passes still run (graceful degradation —
    the caller inspects ``context.diagnostics`` / the resulting
    :class:`repro.diagnostics.PipelineReport` instead of a traceback).
    """

    def __init__(self, passes=None, verbose=False, profiler=None,
                 strict=True):
        self.passes = list(passes or [])
        self.verbose = verbose
        self.profiler = profiler
        self.strict = strict

    def add(self, pass_):
        self.passes.append(pass_)
        return self

    def _run_pass(self, pass_, context):
        if self.strict:
            pass_(context)
            return
        try:
            pass_(context)
        except Exception as exc:
            context.diagnostics.append(
                Diagnostic.from_exception(pass_.name, exc))

    def run(self, unit_or_context):
        if isinstance(unit_or_context, ProgramContext):
            context = unit_or_context
        else:
            context = ProgramContext(unit_or_context)
        profiling = self.profiler is not None and self.profiler.enabled
        for pass_ in self.passes:
            if self.verbose:
                print("[driver] running %s" % pass_.name)
            if profiling:
                with self.profiler.span(pass_.name):
                    self._run_pass(pass_, context)
                    self.profiler.annotate(
                        **pass_.profile_stats(context))
            else:
                self._run_pass(pass_, context)
        return context
