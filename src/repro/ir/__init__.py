"""Pass infrastructure over the C AST: pass manager, CFG, dataflow, loops.

Mirrors the CETUS machinery the paper builds on (§5.3): each framework
component subclasses :class:`AnalysisPass` or :class:`TransformPass` and a
:class:`Driver` runs them in series against a shared
:class:`ProgramContext`.
"""

from repro.ir.passes import (
    AnalysisPass,
    Driver,
    PassError,
    ProgramContext,
    TransformPass,
)
from repro.ir.cfg import CFG, BasicBlock, build_cfg
from repro.ir.dataflow import ForwardDataflow
from repro.ir.loops import LoopInfo, estimate_trip_count, loop_depth_map

__all__ = [
    "AnalysisPass",
    "TransformPass",
    "Driver",
    "PassError",
    "ProgramContext",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "ForwardDataflow",
    "LoopInfo",
    "estimate_trip_count",
    "loop_depth_map",
]
