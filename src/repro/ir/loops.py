"""Loop structure helpers: nesting depth and static trip-count estimation.

Stage 1 weights read/write counts by estimated loop trip counts so Stage 4
can map the *frequently accessed* shared data to on-chip memory (paper
§4.4).  For loops whose bounds are not compile-time constants we fall back
to a default trip count, the same conservative move profile-free embedded
partitioners (Panda et al. [21]) make.
"""

from repro.cfront import c_ast

DEFAULT_TRIP_COUNT = 16

_LOOP_TYPES = (c_ast.For, c_ast.While, c_ast.DoWhile)


class LoopInfo:
    """Static facts about one loop."""

    __slots__ = ("node", "depth", "trip_count", "is_constant")

    def __init__(self, node, depth, trip_count, is_constant):
        self.node = node
        self.depth = depth
        self.trip_count = trip_count
        self.is_constant = is_constant

    def __repr__(self):
        return "LoopInfo(depth=%d, trips=%s%s)" % (
            self.depth, self.trip_count,
            "" if self.is_constant else "~")


def loop_depth_map(func):
    """Map each AST node in ``func`` to its loop nesting depth."""
    depths = {}

    def visit(node, depth):
        depths[id(node)] = depth
        next_depth = depth + 1 if isinstance(node, _LOOP_TYPES) else depth
        for _, child in node.children():
            visit(child, next_depth)

    visit(func.body, 0)
    return depths


def find_loops(func):
    """All loops in ``func`` with nesting depth and trip estimates."""
    loops = []

    def visit(node, depth):
        if isinstance(node, _LOOP_TYPES):
            trips, constant = estimate_trip_count(node)
            loops.append(LoopInfo(node, depth, trips, constant))
            depth += 1
        for _, child in node.children():
            visit(child, depth)

    visit(func.body, 0)
    return loops


def estimate_trip_count(loop):
    """Return ``(trip_count, is_constant)`` for a loop node.

    Recognizes the canonical ``for (i = lo; i < hi; i++)`` family with
    constant bounds (also ``<=``, ``>``, ``>=``, ``+= step``).  Anything
    else gets :data:`DEFAULT_TRIP_COUNT`.
    """
    if not isinstance(loop, c_ast.For):
        return DEFAULT_TRIP_COUNT, False
    bounds = _canonical_for_bounds(loop)
    if bounds is None:
        return DEFAULT_TRIP_COUNT, False
    low, high, step, inclusive = bounds
    if step == 0:
        return DEFAULT_TRIP_COUNT, False
    span = high - low + (1 if inclusive else 0)
    if step < 0:
        span = -span
        step = -step
    if span <= 0:
        return 0, True
    return (span + step - 1) // step, True


def _canonical_for_bounds(loop):
    """Extract (low, high, step, inclusive) if all parts are constant."""
    var, low = _init_var_and_value(loop.init)
    if var is None:
        return None
    cond = loop.cond
    if not isinstance(cond, c_ast.BinaryOp):
        return None
    if not (isinstance(cond.left, c_ast.Id) and cond.left.name == var):
        return None
    high = _const_value(cond.right)
    if high is None:
        return None
    step = _step_value(loop.step, var)
    if step is None:
        return None
    if cond.op == "<":
        return low, high, step, False
    if cond.op == "<=":
        return low, high, step, True
    # descending loops: flip the bounds and count with a positive step
    if cond.op == ">":
        return high, low, abs(step), False
    if cond.op == ">=":
        return high, low, abs(step), True
    return None


def _init_var_and_value(init):
    if isinstance(init, c_ast.DeclStmt) and len(init.decls) == 1:
        decl = init.decls[0]
        value = _const_value(decl.init)
        if value is not None:
            return decl.name, value
        return None, None
    if isinstance(init, c_ast.ExprStmt) and \
            isinstance(init.expr, c_ast.Assignment) and init.expr.op == "=" \
            and isinstance(init.expr.lvalue, c_ast.Id):
        value = _const_value(init.expr.rvalue)
        if value is not None:
            return init.expr.lvalue.name, value
    return None, None


def _step_value(step, var):
    if step is None:
        return None
    if isinstance(step, c_ast.UnaryOp) and \
            isinstance(step.operand, c_ast.Id) and step.operand.name == var:
        if step.op in ("++", "p++"):
            return 1
        if step.op in ("--", "p--"):
            return -1
    if isinstance(step, c_ast.Assignment) and \
            isinstance(step.lvalue, c_ast.Id) and step.lvalue.name == var:
        amount = _const_value(step.rvalue)
        if amount is None:
            return None
        if step.op == "+=":
            return amount
        if step.op == "-=":
            return -amount
    return None


def _const_value(expr):
    if isinstance(expr, c_ast.Constant) and expr.kind == "int":
        return expr.value
    if isinstance(expr, c_ast.UnaryOp) and expr.op == "-":
        inner = _const_value(expr.operand)
        if inner is not None:
            return -inner
    return None
