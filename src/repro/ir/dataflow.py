"""Generic forward dataflow fixpoint solver over a CFG.

The points-to stage (paper §4.3: "A dataflow methodology is used ...
Once a fixed point is reached, the analyzer produces a relationship map")
instantiates this with a lattice of pointer-relationship maps.
"""


class ForwardDataflow:
    """Iterative forward solver.

    Subclasses provide:

    * ``initial()``           — lattice bottom for block entry,
    * ``boundary()``          — value at the function entry,
    * ``merge(a, b)``         — join of two lattice values,
    * ``transfer(block, v)``  — flow ``v`` through ``block``'s statements.

    ``solve(cfg)`` returns ``{block_index: (in_value, out_value)}``.
    """

    MAX_ITERATIONS = 1000

    def initial(self):
        raise NotImplementedError

    def boundary(self):
        raise NotImplementedError

    def merge(self, a, b):
        raise NotImplementedError

    def transfer(self, block, value):
        raise NotImplementedError

    def equal(self, a, b):
        return a == b

    def solve(self, cfg):
        order = cfg.rpo()
        in_values = {block.index: self.initial() for block in cfg.blocks}
        out_values = {block.index: self.initial() for block in cfg.blocks}
        in_values[cfg.entry.index] = self.boundary()

        changed = True
        iterations = 0
        while changed:
            iterations += 1
            if iterations > self.MAX_ITERATIONS:
                raise RuntimeError("dataflow failed to converge")
            changed = False
            for block in order:
                if block is cfg.entry:
                    in_value = self.boundary()
                else:
                    in_value = self.initial()
                    for pred in block.predecessors:
                        in_value = self.merge(in_value,
                                              out_values[pred.index])
                out_value = self.transfer(block, in_value)
                if not self.equal(out_value, out_values[block.index]) or \
                        not self.equal(in_value, in_values[block.index]):
                    changed = True
                in_values[block.index] = in_value
                out_values[block.index] = out_value
        return {index: (in_values[index], out_values[index])
                for index in in_values}
