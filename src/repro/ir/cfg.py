"""Per-function control-flow graphs over the C AST.

Basic blocks hold statement-level AST nodes; edges carry an optional label
('true'/'false' for branches).  The points-to stage (paper §4.3) merges
pointer facts across these edges, classifying facts that only hold on one
arm of an if-else as "possibly" rather than "definite".
"""

from repro.cfront import c_ast


class BasicBlock:
    """A straight-line sequence of simple statements."""

    def __init__(self, index):
        self.index = index
        self.statements = []
        self.successors = []   # list of (BasicBlock, label)
        self.predecessors = []  # list of BasicBlock

    def add_edge(self, other, label=None):
        self.successors.append((other, label))
        other.predecessors.append(self)

    def __repr__(self):
        return "BasicBlock(%d, %d stmts, -> %s)" % (
            self.index, len(self.statements),
            [b.index for b, _ in self.successors])


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, function_name):
        self.function_name = function_name
        self.blocks = []
        self.entry = self._new_block()
        self.exit = self._new_block()

    def _new_block(self):
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def reachable_blocks(self):
        """Blocks reachable from entry, in discovery order."""
        seen = []
        seen_set = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.index in seen_set:
                continue
            seen_set.add(block.index)
            seen.append(block)
            for succ, _ in reversed(block.successors):
                stack.append(succ)
        return seen

    def rpo(self):
        """Reverse post-order over reachable blocks (good for forward
        dataflow convergence)."""
        visited = set()
        order = []

        def dfs(block):
            visited.add(block.index)
            for succ, _ in block.successors:
                if succ.index not in visited:
                    dfs(succ)
            order.append(block)

        dfs(self.entry)
        return list(reversed(order))

    def back_edges(self):
        """Edges that close a cycle: ``(src, dst)`` pairs where ``dst``
        is an ancestor of ``src`` on the DFS spanning tree.  Catches
        both the builder's structured ``back`` edges and any cycle a
        ``goto`` introduces."""
        edges = []
        state = {}  # index -> 1 (on stack) | 2 (done)
        stack = [(self.entry, iter(self.entry.successors))]
        state[self.entry.index] = 1
        while stack:
            block, successors = stack[-1]
            advanced = False
            for succ, _ in successors:
                mark = state.get(succ.index)
                if mark == 1:
                    edges.append((block, succ))
                elif mark is None:
                    state[succ.index] = 1
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                state[block.index] = 2
                stack.pop()
        return edges

    def loop_heads(self):
        """Indices of blocks that head a cycle — the widening points
        for abstract interpretation (every cycle passes through at
        least one DFS back-edge target)."""
        return {dst.index for _, dst in self.back_edges()}


class _CFGBuilder:
    """Builds a CFG from a function body by structural recursion."""

    def __init__(self, name):
        self.cfg = CFG(name)
        self.break_targets = []
        self.continue_targets = []
        self.labels = {}
        self.pending_gotos = []

    def build(self, body):
        current = self.cfg._new_block()
        self.cfg.entry.add_edge(current)
        last = self._stmt_seq(body.items if isinstance(
            body, c_ast.Compound) else [body], current)
        if last is not None:
            last.add_edge(self.cfg.exit)
        for block, label in self.pending_gotos:
            if label in self.labels:
                block.add_edge(self.labels[label], "goto")
            else:
                block.add_edge(self.cfg.exit, "goto")
        return self.cfg

    def _stmt_seq(self, stmts, current):
        """Thread ``stmts`` through the graph; returns the live tail block
        (or None if control never falls through)."""
        for stmt in stmts:
            if current is None:
                current = self.cfg._new_block()  # unreachable code
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt, current):
        if isinstance(stmt, c_ast.Compound):
            return self._stmt_seq(stmt.items, current)
        if isinstance(stmt, c_ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, c_ast.While):
            return self._while(stmt, current)
        if isinstance(stmt, c_ast.DoWhile):
            return self._do_while(stmt, current)
        if isinstance(stmt, c_ast.For):
            return self._for(stmt, current)
        if isinstance(stmt, c_ast.Switch):
            return self._switch(stmt, current)
        if isinstance(stmt, c_ast.Return):
            current.statements.append(stmt)
            current.add_edge(self.cfg.exit, "return")
            return None
        if isinstance(stmt, c_ast.Break):
            current.statements.append(stmt)
            if self.break_targets:
                current.add_edge(self.break_targets[-1], "break")
            else:
                current.add_edge(self.cfg.exit, "break")
            return None
        if isinstance(stmt, c_ast.Continue):
            current.statements.append(stmt)
            if self.continue_targets:
                current.add_edge(self.continue_targets[-1], "continue")
            else:
                current.add_edge(self.cfg.exit, "continue")
            return None
        if isinstance(stmt, c_ast.Goto):
            current.statements.append(stmt)
            self.pending_gotos.append((current, stmt.label))
            return None
        if isinstance(stmt, c_ast.Label):
            target = self.cfg._new_block()
            current.add_edge(target)
            self.labels[stmt.name] = target
            return self._stmt(stmt.stmt, target)
        # simple statement
        current.statements.append(stmt)
        return current

    def _if(self, stmt, current):
        current.statements.append(("branch", stmt.cond))
        then_block = self.cfg._new_block()
        current.add_edge(then_block, "true")
        then_tail = self._stmt(stmt.then, then_block)
        join = self.cfg._new_block()
        if stmt.els is not None:
            else_block = self.cfg._new_block()
            current.add_edge(else_block, "false")
            else_tail = self._stmt(stmt.els, else_block)
            if else_tail is not None:
                else_tail.add_edge(join)
        else:
            current.add_edge(join, "false")
        if then_tail is not None:
            then_tail.add_edge(join)
        return join

    def _while(self, stmt, current):
        head = self.cfg._new_block()
        current.add_edge(head)
        head.statements.append(("branch", stmt.cond))
        body = self.cfg._new_block()
        exit_block = self.cfg._new_block()
        head.add_edge(body, "true")
        head.add_edge(exit_block, "false")
        self.break_targets.append(exit_block)
        self.continue_targets.append(head)
        tail = self._stmt(stmt.body, body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if tail is not None:
            tail.add_edge(head, "back")
        return exit_block

    def _do_while(self, stmt, current):
        body = self.cfg._new_block()
        current.add_edge(body)
        head = self.cfg._new_block()  # condition check
        exit_block = self.cfg._new_block()
        self.break_targets.append(exit_block)
        self.continue_targets.append(head)
        tail = self._stmt(stmt.body, body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if tail is not None:
            tail.add_edge(head)
        head.statements.append(("branch", stmt.cond))
        head.add_edge(body, "back")
        head.add_edge(exit_block, "false")
        return exit_block

    def _for(self, stmt, current):
        if stmt.init is not None:
            current.statements.append(stmt.init)
        head = self.cfg._new_block()
        current.add_edge(head)
        body = self.cfg._new_block()
        exit_block = self.cfg._new_block()
        if stmt.cond is not None:
            head.statements.append(("branch", stmt.cond))
            head.add_edge(body, "true")
            head.add_edge(exit_block, "false")
        else:
            head.add_edge(body, "true")
        step_block = self.cfg._new_block()
        self.break_targets.append(exit_block)
        self.continue_targets.append(step_block)
        tail = self._stmt(stmt.body, body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if tail is not None:
            tail.add_edge(step_block)
        if stmt.step is not None:
            step_block.statements.append(c_ast.ExprStmt(stmt.step,
                                                        stmt.step.coord))
        step_block.add_edge(head, "back")
        return exit_block

    def _switch(self, stmt, current):
        current.statements.append(("branch", stmt.cond))
        exit_block = self.cfg._new_block()
        self.break_targets.append(exit_block)
        previous_tail = None
        has_default = False
        for item in stmt.body.items:
            case_block = self.cfg._new_block()
            current.add_edge(case_block, "case")
            if previous_tail is not None:
                previous_tail.add_edge(case_block, "fallthrough")
            if isinstance(item, c_ast.Default):
                has_default = True
            stmts = item.stmts
            previous_tail = self._stmt_seq(stmts, case_block)
        if previous_tail is not None:
            previous_tail.add_edge(exit_block)
        if not has_default:
            current.add_edge(exit_block, "nomatch")
        self.break_targets.pop()
        return exit_block


def build_cfg(func):
    """Build the CFG for a :class:`c_ast.FuncDef`."""
    return _CFGBuilder(func.name).build(func.body)
