"""The RCCE API surface, bound to the simulated chip.

:class:`RCCEWorld` is the per-run shared state (symmetric allocators,
barrier, locks); :class:`RCCECoreRuntime` is one core's view, exposing
the ``RCCE_*`` builtins to the interpreter.

Symmetric allocation: RCCE requires all UEs to call the collective
allocators in the same order with the same sizes; the first caller
performs the allocation, later callers get the same segment back — so
every core sees identical shared addresses, like the real library's
symmetric heap.
"""

import threading

from repro.sim.values import NULL, Pointer
from repro.rcce.comm import (
    REDUCE_OPS,
    CollectiveArea,
    FlagTable,
    MessageFabric,
)
from repro.rcce.sync import ClockBarrier, TestAndSetRegisters

SHMALLOC_COST = 300
MPB_MALLOC_COST = 120
INIT_COST = 5000
PUT_GET_SETUP_COST = 20


class RCCEAllocationError(Exception):
    """Collective allocation sequence mismatch between UEs."""


class _SymmetricHeap:
    """Sequence-matched collective allocator over one segment kind."""

    def __init__(self, alloc_fn, label):
        self.alloc_fn = alloc_fn
        self.label = label
        self.allocations = []   # [(size, segment)]
        self.sequence = {}      # rank -> next sequence index
        self.lock = threading.Lock()

    def allocate(self, rank, size):
        with self.lock:
            index = self.sequence.get(rank, 0)
            self.sequence[rank] = index + 1
            if index < len(self.allocations):
                recorded_size, segment = self.allocations[index]
                if recorded_size != size:
                    raise RCCEAllocationError(
                        "UE %d allocation #%d asked %d bytes where "
                        "another UE asked %d (%s)" % (
                            rank, index, size, recorded_size, self.label))
                return segment
            segment = self.alloc_fn(size, "%s#%d" % (self.label, index))
            self.allocations.append((size, segment))
            return segment


class RCCEWorld:
    """Shared state for one RCCE program run over ``num_ues`` cores.

    ``watchdog`` (a :class:`repro.sim.watchdog.Watchdog`) supervises
    lock and barrier waits: wait-for-graph deadlock detection on the
    test-and-set registers and wall-clock bounds on the barrier.
    Without one, the primitives behave exactly as before (modulo the
    barrier's default dead-peer timeout).
    """

    def __init__(self, chip, num_ues, core_map=None, watchdog=None):
        if num_ues < 1:
            raise ValueError("need at least one UE")
        if num_ues > chip.config.num_cores:
            raise ValueError("more UEs than cores")
        self.chip = chip
        self.num_ues = num_ues
        self.watchdog = watchdog
        self.core_map = list(core_map) if core_map \
            else list(range(num_ues))
        if len(self.core_map) != num_ues:
            raise ValueError("core_map length must equal num_ues")
        barrier_kwargs = {}
        if watchdog is not None:
            barrier_kwargs["timeout"] = watchdog.barrier_timeout
        self.barrier = ClockBarrier(
            num_ues, chip.barrier_cost(num_ues), **barrier_kwargs)
        self.registers = TestAndSetRegisters(chip.config.num_cores,
                                             watchdog)
        # race detector (repro.race), installed on the chip by the
        # runner before the world is built; None = every hook dead
        self.race = getattr(chip, "race", None)
        self.barrier.race = self.race
        self.registers.race = self.race
        # cycle attribution (repro.obs.attribution), installed the
        # same way; the runtime classifies every cycle it charges and
        # feeds the critical-path analyzer its sync events
        self.attribution = getattr(chip, "attribution", None)
        if self.attribution is not None:
            self.attribution.bind_ranks(self.core_map)
        self.shared_heap = _SymmetricHeap(
            chip.address_space.alloc_shared, "shmalloc")
        self.mpb_heap = _SymmetricHeap(
            chip.address_space.alloc_mpb, "mpbmalloc")
        self.mpb_fallbacks = 0  # RCCE_malloc calls that spilled to DRAM
        self.fabric = MessageFabric()
        self.flags = FlagTable()
        # recovery-layer send retrier (repro.recovery.retry), installed
        # by the runner when retry is enabled; None keeps RCCE_send on
        # the exact pre-recovery path
        self.retrier = None
        self.collectives = CollectiveArea(self.barrier, num_ues)
        self.messages_sent = 0
        # communication/synchronization accumulators, published through
        # the chip's metrics registry (repro.obs); the collector
        # replaces any previous world's on a reused chip
        self.put_bytes = 0
        self.get_bytes = 0
        self.send_bytes = 0
        self.lock_contentions = 0
        chip.metrics.register_collector(
            "rcce.world", self._collect_metrics, self._reset_counters)
        # barriers are low-frequency: a direct histogram is fine
        self.barrier_wait = chip.metrics.histogram(
            "rcce_barrier_wait_cycles",
            "cycles each UE spent waiting at a barrier")
        # symmetric split allocations: sequence-matched (size, on-chip)
        self._split_lock = threading.Lock()
        self._split_allocs = []
        self._split_sequence = {}

    def allocate_split(self, rank, size, on_chip_bytes):
        """Collective §4.4 split allocation (head SRAM, tail DRAM)."""
        with self._split_lock:
            index = self._split_sequence.get(rank, 0)
            self._split_sequence[rank] = index + 1
            if index < len(self._split_allocs):
                recorded, segment = self._split_allocs[index]
                if recorded != (size, on_chip_bytes):
                    raise RCCEAllocationError(
                        "UE %d split allocation #%d mismatch: %r vs %r"
                        % (rank, index, (size, on_chip_bytes), recorded))
                return segment
            segment = self.chip.address_space.alloc_split(
                size, on_chip_bytes, "split#%d" % index)
            self._split_allocs.append(((size, on_chip_bytes), segment))
            return segment

    def runtime_for(self, rank):
        return RCCECoreRuntime(self, rank)

    def abort(self, failure=None):
        """Fail-fast propagation: break the barrier for every waiter
        (carrying ``failure`` as the cause) and cancel every
        watchdog-supervised lock wait."""
        self.barrier.abort(failure)
        if self.watchdog is not None:
            self.watchdog.abort()

    # -- observability ------------------------------------------------------

    def _collect_metrics(self):
        samples = [
            ("counter", "rcce_barrier_rounds", {}, self.barrier.rounds),
            ("counter", "rcce_messages_sent", {}, self.messages_sent),
            ("counter", "rcce_mpb_fallbacks", {}, self.mpb_fallbacks),
            ("counter", "rcce_put_bytes", {}, self.put_bytes),
            ("counter", "rcce_get_bytes", {}, self.get_bytes),
            ("counter", "rcce_send_bytes", {}, self.send_bytes),
            ("counter", "rcce_lock_contentions", {},
             self.lock_contentions),
        ]
        for register, count in enumerate(self.registers.acquisitions):
            if count:
                samples.append(("counter", "rcce_lock_acquisitions",
                                {"register": register}, count))
        retrier = self.retrier
        if retrier is not None:
            for core in sorted(retrier.retries):
                count = retrier.retries[core]
                if count:
                    samples.append(("counter", "rcce_send_retries",
                                    {"core": core}, count))
            if retrier.exhausted:
                samples.append(("counter",
                                "rcce_send_retries_exhausted", {},
                                retrier.exhausted))
        return samples

    def _reset_counters(self):
        self.barrier.rounds = 0
        self.messages_sent = 0
        self.mpb_fallbacks = 0
        self.put_bytes = 0
        self.get_bytes = 0
        self.send_bytes = 0
        self.lock_contentions = 0
        self.registers.reset_counts()
        if self.retrier is not None:
            self.retrier.reset_counts()


class RCCECoreRuntime:
    """One UE's RCCE builtins."""

    def __init__(self, world, rank):
        self.world = world
        self.rank = rank
        self.core_id = world.core_map[rank]
        self.race = world.race
        self.attr = world.attribution
        self._collective_round = 0
        # mesh topology and the rank->core map are fixed for the
        # world's lifetime, so hop counts to each peer are memoized
        # (RCCE_send/recv/flag/bcast/reduce all price messages by hops)
        self._hops_to = {}

    # -- builtin registry ---------------------------------------------------

    def builtins(self):
        return {
            "RCCE_init": self._init,
            "RCCE_finalize": self._finalize,
            "RCCE_ue": self._ue,
            "RCCE_num_ues": self._num_ues,
            "RCCE_shmalloc": self._shmalloc,
            "RCCE_shmalloc_split": self._shmalloc_split,
            "RCCE_shfree": self._free,
            "RCCE_malloc": self._mpb_malloc,
            "RCCE_free": self._free,
            "RCCE_barrier": self._barrier,
            "RCCE_acquire_lock": self._acquire_lock,
            "RCCE_release_lock": self._release_lock,
            "RCCE_put": self._put,
            "RCCE_get": self._get,
            "RCCE_wtime": self._wtime,
            "RCCE_send": self._send,
            "RCCE_recv": self._recv,
            "RCCE_flag_alloc": self._flag_alloc,
            "RCCE_flag_free": self._flag_free,
            "RCCE_flag_write": self._flag_write,
            "RCCE_flag_read": self._flag_read,
            "RCCE_wait_until": self._wait_until,
            "RCCE_bcast": self._bcast,
            "RCCE_reduce": self._reduce,
            "RCCE_allreduce": self._allreduce,
            "RCCE_comm_rank": self._comm_rank,
            "RCCE_comm_size": self._comm_size,
            "RCCE_power_domain": self._power_domain,
            "RCCE_iset_power": self._iset_power,
            "RCCE_wait_power": self._noop_ok,
            "RCCE_set_frequency_divider": self._set_frequency_divider,
        }

    @staticmethod
    def _eval(interp, arg_nodes):
        return [interp.eval_expr(node) for node in arg_nodes]

    def race_thread(self):
        """The thread id the race detector stamps accesses with: UE
        ranks (stable under any core_map)."""
        return self.rank

    # -- lifecycle ---------------------------------------------------------------

    def _init(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        interp.charge(INIT_COST)
        return 0

    def _finalize(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        self._barrier_wait(interp, "finalize_barrier")
        return 0

    def _barrier_wait(self, interp, label):
        """Align clocks at the barrier, tracing entry/exit as one
        span per core."""
        entry = interp.cycles
        attr = self.attr
        # snapshot before the wait so phase deltas see only the
        # phase's own work
        snapshot = attr.core_snapshot(self.core_id) \
            if attr is not None else None
        interp.cycles = self.world.barrier.wait(self.rank, entry)
        self.world.barrier_wait.observe(interp.cycles - entry)
        if attr is not None:
            attr.add(self.core_id, "barrier_wait",
                     interp.cycles - entry)
            attr.barrier_event(self.rank, entry, interp.cycles,
                               snapshot)
        events = self.world.chip.events
        if events.enabled:
            events.complete(self.core_id, entry, interp.cycles - entry,
                            label, "sync", {"rank": self.rank},
                            pid=self.world.chip.trace_pid)

    def _ue(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        interp.charge_op("int_alu")
        return self.rank

    def _num_ues(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        interp.charge_op("int_alu")
        return self.world.num_ues

    # -- memory --------------------------------------------------------------------

    def _shmalloc(self, interp, arg_nodes):
        args = self._eval(interp, arg_nodes)
        interp.charge(SHMALLOC_COST)
        size = max(int(args[0]), 4)
        segment = self.world.shared_heap.allocate(self.rank, size)
        if self.race is not None:
            self.race.register(segment.label or "shmalloc",
                               segment.base, segment.size, "shared")
        return Pointer(segment.base, 4, None)

    def _shmalloc_split(self, interp, arg_nodes):
        """RCCE_shmalloc_split(nbytes, on_chip_bytes): §4.4's
        DRAM/SRAM split allocation — contiguous to the program."""
        args = self._eval(interp, arg_nodes)
        interp.charge(SHMALLOC_COST + MPB_MALLOC_COST)
        size = max(int(args[0]), 4)
        on_chip = max(int(args[1]), 0) if len(args) > 1 else 0
        segment = self.world.allocate_split(self.rank, size, on_chip)
        if self.race is not None:
            self.race.register(segment.label or "split",
                               segment.base, segment.size, "shared")
        return Pointer(segment.base, 4, None)

    def _mpb_malloc(self, interp, arg_nodes):
        """On-chip allocation; falls back to shared DRAM when the MPB
        is full (like a runtime spilling oversized data off-chip —
        the LU matrix case of Figure 6.2)."""
        from repro.scc.memmap import OutOfMemoryError
        args = self._eval(interp, arg_nodes)
        interp.charge(MPB_MALLOC_COST)
        size = max(int(args[0]), 4)
        fallback = False
        try:
            segment = self.world.mpb_heap.allocate(self.rank, size)
        except OutOfMemoryError:
            fallback = True
            self.world.mpb_fallbacks += 1
            segment = self.world.shared_heap.allocate(self.rank, size)
        events = self.world.chip.events
        if events.enabled:
            events.instant(self.core_id, interp.cycles, "mpb_alloc",
                           "mem", {"size": size, "fallback": fallback},
                           pid=self.world.chip.trace_pid)
        if self.race is not None:
            self.race.register(segment.label or "mpbmalloc",
                               segment.base, segment.size, "shared")
        return Pointer(segment.base, 4, None)

    def _free(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        interp.charge(SHMALLOC_COST // 4)
        return None

    # -- synchronization --------------------------------------------------------------

    def _barrier(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        self._barrier_wait(interp, "barrier")
        return 0

    def _acquire_lock(self, interp, arg_nodes):
        args = self._eval(interp, arg_nodes)
        register = int(args[0]) if args else 0
        owner = register % self.world.chip.config.num_cores
        cost = self.world.chip.lock_cost(self.core_id, owner)
        interp.charge(cost)
        if self.attr is not None:
            self.attr.add(self.core_id, "lock_spin", cost)
        contended = self.world.registers.contended(register)
        if contended:
            self.world.lock_contentions += 1
        entry = interp.cycles
        self.world.registers.acquire(register, self.rank)
        events = self.world.chip.events
        if events.enabled:
            events.instant(self.core_id, entry, "lock_acquire", "sync",
                           {"register": register,
                            "contended": contended},
                           pid=self.world.chip.trace_pid)
        return 0

    def _release_lock(self, interp, arg_nodes):
        args = self._eval(interp, arg_nodes)
        register = int(args[0]) if args else 0
        owner = register % self.world.chip.config.num_cores
        cost = self.world.chip.lock_cost(self.core_id, owner)
        interp.charge(cost)
        if self.attr is not None:
            self.attr.add(self.core_id, "lock_spin", cost)
        self.world.registers.release(register, self.rank)
        return 0

    # -- one-sided communication ----------------------------------------------------------

    def _put(self, interp, arg_nodes):
        """RCCE_put(target_mpb, source, nbytes, target_ue)."""
        return self._move(interp, arg_nodes, is_put=True)

    def _get(self, interp, arg_nodes):
        """RCCE_get(target, source_mpb, nbytes, source_ue)."""
        return self._move(interp, arg_nodes, is_put=False)

    def _move(self, interp, arg_nodes, is_put):
        args = self._eval(interp, arg_nodes)
        if len(args) < 3:
            return -1
        dst, src, nbytes = args[0], args[1], max(int(args[2]), 0)
        if not isinstance(dst, Pointer) or not isinstance(src, Pointer):
            return -1
        mpb_side = dst if is_put else src
        entry = interp.cycles
        interp.charge(PUT_GET_SETUP_COST)
        try:
            offset = self.world.chip.address_space.mpb_offset(
                mpb_side.addr)
            # bulk_transfer_cycles attributes its own mpb/mesh split
            interp.charge(self.world.chip.mpb.bulk_transfer_cycles(
                self.core_id, offset, nbytes))
        except ValueError:
            # not actually an MPB address; price as word accesses
            words = max(nbytes // 4, 1)
            interp.charge(words)
            if self.attr is not None:
                self.attr.add(self.core_id, "block_copy", words)
        stride = max(dst.stride, 1)
        count = max(nbytes // stride, 1)
        interp.memory.memcpy(dst.addr, src.addr, count, stride)
        if self.race is not None:
            # the bulk copy bypasses interp.load/store, so audit it here
            self.race.record_range(interp, src.addr, count, stride,
                                   "read")
            self.race.record_range(interp, dst.addr, count, stride,
                                   "write")
        if is_put:
            self.world.put_bytes += nbytes
        else:
            self.world.get_bytes += nbytes
        events = self.world.chip.events
        if events.enabled:
            events.complete(self.core_id, entry,
                            interp.cycles - entry,
                            "put" if is_put else "get", "comm",
                            {"bytes": nbytes},
                            pid=self.world.chip.trace_pid)
        return 0

    def _wtime(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        return self.world.chip.config.seconds_from_cycles(interp.cycles)

    # -- two-sided communication (RCCE_comm layer) ----------------------------------

    def _buffer_values(self, interp, pointer, nbytes):
        stride = max(pointer.stride, 1)
        count = max(nbytes // stride, 1)
        return interp.memory.snapshot_range(pointer.addr, count, stride), \
            count, stride

    def _transfer_parts(self, peer_rank, nbytes):
        """One message = a bulk copy staged through the peer's MPB.
        Returns ``(total_cycles, mesh_hop_part)`` so attribution can
        split the charge."""
        peer = peer_rank % self.world.num_ues
        hops = self._hops_to.get(peer)
        if hops is None:
            peer_core = self.world.core_map[peer]
            hops = self._hops_to[peer] = self.world.chip.mesh.hops(
                self.core_id, peer_core)
        words = max((nbytes + 3) // 4, 1)
        config = self.world.chip.config
        hop_part = hops * config.mesh_cycles_per_hop
        return (2 * config.mpb_base_cycles + hop_part + words,
                hop_part)

    def _transfer_cost(self, peer_rank, nbytes):
        return self._transfer_parts(peer_rank, nbytes)[0]

    def _attr_transfer(self, total, hop_part):
        """Attribute one charged message-transfer cost (MPB round
        trips + pipelined words vs. mesh hops)."""
        self.attr.add(self.core_id, "mesh_hop", hop_part)
        self.attr.add(self.core_id, "mpb", total - hop_part)

    def _send(self, interp, arg_nodes):
        """RCCE_send(buf, size, dest) — synchronous."""
        args = self._eval(interp, arg_nodes)
        if len(args) < 3 or not isinstance(args[0], Pointer):
            return -1
        buf, nbytes, dest = args[0], max(int(args[1]), 0), int(args[2])
        values, count, stride = self._buffer_values(interp, buf, nbytes)
        if self.race is not None:
            self.race.record_range(interp, buf.addr, count, stride,
                                   "read")
        cost, hop_part = self._transfer_parts(dest, nbytes)
        channel = self.world.fabric.channel(self.rank, dest)
        entry = interp.cycles
        seq = None
        retrier = self.world.retrier
        if retrier is not None:
            seq = retrier.next_seq(self.rank, dest)
            extra = retrier.transmit(self, interp, dest, seq, cost)
            interp.charge(extra)
            if self.attr is not None:
                self.attr.add(self.core_id, "retry_backoff", extra)
        posted = interp.cycles + cost
        interp.cycles = channel.send(values, posted,
                                     seq=seq, race=self.race,
                                     tid=self.rank)
        if self.attr is not None:
            self._attr_transfer(cost, hop_part)
            self.attr.add(self.core_id, "comm_wait",
                          interp.cycles - posted)
            self.attr.send_event(self.rank,
                                 dest % self.world.num_ues,
                                 entry, posted, interp.cycles)
        self.world.messages_sent += 1
        self.world.send_bytes += nbytes
        events = self.world.chip.events
        if events.enabled:
            events.complete(self.core_id, entry,
                            interp.cycles - entry, "send", "comm",
                            {"bytes": nbytes, "dest": dest},
                            pid=self.world.chip.trace_pid)
        return 0

    def _recv(self, interp, arg_nodes):
        """RCCE_recv(buf, size, source) — blocking."""
        args = self._eval(interp, arg_nodes)
        if len(args) < 3 or not isinstance(args[0], Pointer):
            return -1
        buf, nbytes, source = args[0], max(int(args[1]), 0), int(args[2])
        cost, hop_part = self._transfer_parts(source, nbytes)
        channel = self.world.fabric.channel(source, self.rank)
        entry = interp.cycles
        values, clock = channel.recv(interp.cycles, cost,
                                     race=self.race, tid=self.rank)
        interp.cycles = clock
        if self.attr is not None:
            # clock = max(entry, sender_clock) + cost: the transfer is
            # ours to attribute, the rest was spent waiting
            self._attr_transfer(cost, hop_part)
            self.attr.add(self.core_id, "comm_wait",
                          clock - cost - entry)
            self.attr.recv_event(self.rank,
                                 source % self.world.num_ues,
                                 entry, clock - cost, clock)
        events = self.world.chip.events
        if events.enabled:
            events.complete(self.core_id, entry, clock - entry, "recv",
                            "comm", {"bytes": nbytes, "source": source},
                            pid=self.world.chip.trace_pid)
        stride = max(buf.stride, 1)
        for index, value in enumerate(values):
            interp.memory.store(buf.addr + index * stride, value)
        if self.race is not None and values:
            self.race.record_range(interp, buf.addr, len(values),
                                   stride, "write")
        return 0

    # -- MPB flags ---------------------------------------------------------------------

    def _flag_alloc(self, interp, arg_nodes):
        args = self._eval(interp, arg_nodes)
        if not args or not isinstance(args[0], Pointer):
            return -1
        flag_id = self.world.flags.alloc(self.rank)
        interp.store(args[0].addr, flag_id)
        return 0

    def _flag_free(self, interp, arg_nodes):
        args = self._eval(interp, arg_nodes)
        if args and isinstance(args[0], Pointer):
            self.world.flags.free(interp.memory.load(args[0].addr))
        return 0

    def _flag_id(self, interp, value):
        if isinstance(value, Pointer):
            return interp.memory.load(value.addr)
        return int(value)

    def _flag_write(self, interp, arg_nodes):
        """RCCE_flag_write(&flag, value, target_ue)."""
        args = self._eval(interp, arg_nodes)
        if len(args) < 2:
            return -1
        flag_id = self._flag_id(interp, args[0])
        target = int(args[2]) if len(args) > 2 else self.rank
        cost, hop_part = self._transfer_parts(target, 4)
        interp.charge(cost)
        if self.attr is not None:
            self._attr_transfer(cost, hop_part)
            self.attr.flag_write_event(self.rank, flag_id,
                                       interp.cycles)
        self.world.flags.write(flag_id, int(args[1]), interp.cycles,
                               race=self.race, tid=self.rank)
        return 0

    def _flag_read(self, interp, arg_nodes):
        """RCCE_flag_read(flag, &value, source_ue)."""
        args = self._eval(interp, arg_nodes)
        if not args:
            return -1
        flag_id = self._flag_id(interp, args[0])
        source = int(args[2]) if len(args) > 2 else self.rank
        cost, hop_part = self._transfer_parts(source, 4)
        interp.charge(cost)
        if self.attr is not None:
            self._attr_transfer(cost, hop_part)
        value = self.world.flags.read(flag_id, race=self.race,
                                      tid=self.rank)
        if len(args) > 1 and isinstance(args[1], Pointer):
            interp.store(args[1].addr, value)
        return value

    def _wait_until(self, interp, arg_nodes):
        """RCCE_wait_until(flag, value) — spin on a remote flag."""
        args = self._eval(interp, arg_nodes)
        if len(args) < 2:
            return -1
        flag_id = self._flag_id(interp, args[0])
        interp.charge(self.world.chip.config.mpb_base_cycles)
        entry = interp.cycles
        interp.cycles = self.world.flags.wait_until(
            flag_id, int(args[1]), interp.cycles, race=self.race,
            tid=self.rank)
        if self.attr is not None:
            self.attr.add(self.core_id, "mpb",
                          self.world.chip.config.mpb_base_cycles)
            self.attr.add(self.core_id, "comm_wait",
                          interp.cycles - entry)
            self.attr.wait_event(self.rank, flag_id, entry,
                                 interp.cycles)
        return 0

    # -- collectives -------------------------------------------------------------------

    def _next_round(self):
        round_id = self._collective_round
        self._collective_round += 1
        return round_id

    def _bcast(self, interp, arg_nodes):
        """RCCE_bcast(buf, size, root, comm)."""
        args = self._eval(interp, arg_nodes)
        if len(args) < 3 or not isinstance(args[0], Pointer):
            return -1
        buf, nbytes, root = args[0], max(int(args[1]), 0), int(args[2])
        stride = max(buf.stride, 1)
        count = max(nbytes // stride, 1)
        if self.rank == root:
            values = interp.memory.snapshot_range(buf.addr, count, stride)
            if self.race is not None:
                self.race.record_range(interp, buf.addr, count, stride,
                                       "read")
        else:
            values = []
        cost, hop_part = self._transfer_parts(root, nbytes)
        interp.charge(cost)
        attr = self.attr
        snapshot = attr.core_snapshot(self.core_id) \
            if attr is not None else None
        entry = interp.cycles
        deposits, clock = self.world.collectives.exchange(
            self.rank, interp.cycles, values, self._next_round())
        interp.cycles = clock
        if attr is not None:
            # the exchange aligns clocks on the world barrier, so it
            # counts (and records) as a barrier round
            self._attr_transfer(cost, hop_part)
            attr.add(self.core_id, "barrier_wait", clock - entry)
            attr.barrier_event(self.rank, entry, clock, snapshot)
        if self.rank != root:
            delivered = deposits.get(root, [])
            for index, value in enumerate(delivered):
                interp.memory.store(buf.addr + index * stride, value)
            if self.race is not None and delivered:
                self.race.record_range(interp, buf.addr,
                                       len(delivered), stride, "write")
        return 0

    def _reduce_common(self, interp, arg_nodes, all_ranks):
        """RCCE_[all]reduce(inbuf, outbuf, num, type, op[, root], comm).

        ``num`` counts elements; ``type``/``op`` take the RCCE_* enum
        constants.  For RCCE_reduce only the root's outbuf is written.
        """
        args = self._eval(interp, arg_nodes)
        if len(args) < 5 or not isinstance(args[0], Pointer) or \
                not isinstance(args[1], Pointer):
            return -1
        inbuf, outbuf = args[0], args[1]
        count = max(int(args[2]), 1)
        op_code = int(args[4])
        op = _OP_BY_CODE.get(op_code)
        if op is None:
            return -1
        root = None if all_ranks else int(args[5]) if len(args) > 5 else 0
        stride = max(inbuf.stride, 1)
        values = interp.memory.snapshot_range(inbuf.addr, count, stride)
        if self.race is not None:
            self.race.record_range(interp, inbuf.addr, count, stride,
                                   "read")
        cost, hop_part = self._transfer_parts(
            root if root is not None else 0, count * stride)
        interp.charge(cost)
        attr = self.attr
        snapshot = attr.core_snapshot(self.core_id) \
            if attr is not None else None
        entry = interp.cycles
        deposits, clock = self.world.collectives.exchange(
            self.rank, interp.cycles, values, self._next_round())
        interp.cycles = clock
        if attr is not None:
            self._attr_transfer(cost, hop_part)
            attr.add(self.core_id, "barrier_wait", clock - entry)
            attr.barrier_event(self.rank, entry, clock, snapshot)
        if all_ranks or self.rank == root:
            result = CollectiveArea.reduce(deposits, op)
            out_stride = max(outbuf.stride, 1)
            for index, value in enumerate(result):
                interp.memory.store(outbuf.addr + index * out_stride,
                                    value)
            if self.race is not None and result:
                self.race.record_range(interp, outbuf.addr,
                                       len(result), out_stride, "write")
        return 0

    def _reduce(self, interp, arg_nodes):
        return self._reduce_common(interp, arg_nodes, all_ranks=False)

    def _allreduce(self, interp, arg_nodes):
        return self._reduce_common(interp, arg_nodes, all_ranks=True)

    def _comm_rank(self, interp, arg_nodes):
        args = self._eval(interp, arg_nodes)
        if len(args) > 1 and isinstance(args[1], Pointer):
            interp.store(args[1].addr, self.rank)
        return self.rank

    def _comm_size(self, interp, arg_nodes):
        args = self._eval(interp, arg_nodes)
        if len(args) > 1 and isinstance(args[1], Pointer):
            interp.store(args[1].addr, self.world.num_ues)
        return self.world.num_ues

    # -- power management (§5.1's three mechanisms) --------------------------------------
    #
    # The power calls steer the chip's PowerModel (reported watts); the
    # cycle accounting stays at the Table 6.1 frequency — the paper's
    # experiments never change frequency mid-run.

    def _power_domain(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        tile = self.world.chip.mesh.tile_of(self.core_id)
        return self.world.chip.power.domain_of_tile(tile).index

    def _iset_power(self, interp, arg_nodes):
        """RCCE_iset_power(divider): scale this core's power domain."""
        args = self._eval(interp, arg_nodes)
        divider = max(int(args[0]), 1) if args else 1
        config = self.world.chip.config
        freq = max(config.core_freq_mhz // divider, 125)
        voltage = _voltage_for_frequency(freq)
        tile = self.world.chip.mesh.tile_of(self.core_id)
        domain = self.world.chip.power.domain_of_tile(tile)
        self.world.chip.power.set_domain_frequency(
            domain.index, freq, voltage)
        interp.charge(1000)  # the VRC round trip is slow
        return 0

    def _set_frequency_divider(self, interp, arg_nodes):
        return self._iset_power(interp, arg_nodes)

    def _noop_ok(self, interp, arg_nodes):
        self._eval(interp, arg_nodes)
        return 0


# RCCE op/type enum codes (exposed as environment constants).
_OP_BY_CODE = {0: "sum", 1: "max", 2: "min", 3: "prod"}


def _voltage_for_frequency(freq_mhz):
    """Linear V/f interpolation over the §5.1 envelope."""
    from repro.scc.config import MAX_OPERATING_POINT, MIN_OPERATING_POINT
    low, high = MIN_OPERATING_POINT, MAX_OPERATING_POINT
    if freq_mhz <= low.freq_mhz:
        return low.voltage
    if freq_mhz >= high.freq_mhz:
        return high.voltage
    fraction = (freq_mhz - low.freq_mhz) / (high.freq_mhz - low.freq_mhz)
    return low.voltage + fraction * (high.voltage - low.voltage)
