"""Synchronization primitives for the RCCE emulation.

:class:`ClockBarrier` synchronizes the *simulated clocks* as well as
the Python threads: every participant's cycle counter advances to the
slowest participant's, plus the modelled barrier cost — exactly how a
real barrier serializes progress.

:class:`TestAndSetRegisters` models the one test-and-set register each
SCC core owns (§4.5): acquiring lock ``k`` spins on core ``k``'s
register, so the cost depends on mesh distance to that tile.
"""

import threading


class ClockBarrier:
    """A two-phase barrier that aligns simulated cycle counters.

    Phase 1: everyone publishes its clock and waits.  Phase 2 (after
    the max is computed) keeps fast threads from racing ahead and
    clobbering the published clocks of the next round.
    """

    def __init__(self, parties, cost_cycles=0):
        self.parties = parties
        self.cost_cycles = cost_cycles
        self._clocks = {}
        self._max_holder = [0]
        self._lock = threading.Lock()
        self._phase1 = threading.Barrier(parties, action=self._compute_max)
        self._phase2 = threading.Barrier(parties)
        self.rounds = 0

    def _compute_max(self):
        self._max_holder[0] = max(self._clocks.values())
        self.rounds += 1

    def wait(self, rank, clock):
        """Synchronize; returns the new (aligned) clock value."""
        with self._lock:
            self._clocks[rank] = clock
        self._phase1.wait()
        aligned = self._max_holder[0] + self.cost_cycles
        self._phase2.wait()
        return aligned

    def abort(self):
        self._phase1.abort()
        self._phase2.abort()


class TestAndSetRegisters:
    """One atomic test-and-set register per core."""

    __test__ = False  # not a pytest class, despite the hardware's name

    def __init__(self, num_cores):
        self.num_cores = num_cores
        self._locks = [threading.Lock() for _ in range(num_cores)]
        self.acquisitions = [0] * num_cores

    def contended(self, register):
        """Whether register ``register`` is currently held (the
        would-be acquirer would spin)."""
        return self._locks[register % self.num_cores].locked()

    def reset_counts(self):
        self.acquisitions = [0] * self.num_cores

    def acquire(self, register):
        lock = self._locks[register % self.num_cores]
        lock.acquire()
        self.acquisitions[register % self.num_cores] += 1

    def release(self, register):
        lock = self._locks[register % self.num_cores]
        try:
            lock.release()
        except RuntimeError:
            pass  # releasing an unheld lock is a no-op on the SCC register
