"""Synchronization primitives for the RCCE emulation.

:class:`ClockBarrier` synchronizes the *simulated clocks* as well as
the Python threads: every participant's cycle counter advances to the
slowest participant's, plus the modelled barrier cost — exactly how a
real barrier serializes progress.

:class:`TestAndSetRegisters` models the one test-and-set register each
SCC core owns (§4.5): acquiring lock ``k`` spins on core ``k``'s
register, so the cost depends on mesh distance to that tile.

Robustness: a barrier participant that dies (or a run-level ``abort``)
no longer strands the survivors — waits are wall-clock bounded and an
abort carries the originating exception to every waiter
(:class:`~repro.sim.watchdog.BarrierAbortedError`).  Lock acquisition
optionally runs under a :class:`~repro.sim.watchdog.Watchdog`, which
detects wait-for cycles (crossed mutexes) and never-released locks.
"""

import threading

from repro.sim.watchdog import (
    DEFAULT_BARRIER_TIMEOUT,
    BarrierAbortedError,
    BarrierTimeoutError,
)


class ClockBarrier:
    """A two-phase barrier that aligns simulated cycle counters.

    Phase 1: everyone publishes its clock and waits.  Phase 2 (after
    the max is computed) keeps fast threads from racing ahead and
    clobbering the published clocks of the next round.

    ``timeout`` bounds each phase's wait in wall seconds; a peer that
    never arrives (it crashed, or the program deadlocked elsewhere)
    breaks the barrier for everyone with a
    :class:`BarrierTimeoutError` instead of hanging the host process.
    """

    def __init__(self, parties, cost_cycles=0,
                 timeout=DEFAULT_BARRIER_TIMEOUT):
        self.parties = parties
        self.cost_cycles = cost_cycles
        self.timeout = timeout
        self.failure = None      # originating exception, via abort()
        self._aborted = False
        self._clocks = {}
        self._max_holder = [0]
        self._lock = threading.Lock()
        self._phase1 = threading.Barrier(parties, action=self._compute_max)
        self._phase2 = threading.Barrier(parties)
        self.rounds = 0
        # quiesce-point hook (repro.recovery.checkpoint): called from
        # the phase-1 action with every party parked; None costs one
        # attribute check per round
        self.on_round = None
        # race detector (repro.race): barrier entry/exit edges
        self.race = None

    def _compute_max(self):
        self._max_holder[0] = max(self._clocks.values())
        self.rounds += 1
        hook = self.on_round
        if hook is not None:
            try:
                hook(self.rounds)
            except BaseException as exc:
                # the action's thread re-raises out of wait(); record
                # the cause first so peers see a BarrierAbortedError
                # naming it instead of a misleading timeout
                if self.failure is None:
                    self.failure = exc
                raise

    def published_clocks(self):
        """rank -> entry clock for the round in flight.  Meaningful
        from the phase-1 action, where every party has published and
        none has resumed."""
        return dict(self._clocks)

    def wait(self, rank, clock):
        """Synchronize; returns the new (aligned) clock value."""
        race = self.race
        if race is not None:
            race.barrier_enter(rank, self.parties, key=id(self))
        with self._lock:
            self._clocks[rank] = clock
        try:
            self._phase1.wait(self.timeout)
            aligned = self._max_holder[0] + self.cost_cycles
            self._phase2.wait(self.timeout)
        except threading.BrokenBarrierError:
            raise self._broken_error(rank) from self.failure
        if race is not None:
            race.barrier_exit(rank, key=id(self))
        return aligned

    def _broken_error(self, rank):
        if self.failure is not None:
            return BarrierAbortedError(
                "barrier aborted after a peer failed: %s: %s"
                % (type(self.failure).__name__, self.failure))
        if self._aborted:
            return BarrierAbortedError("barrier aborted")
        return BarrierTimeoutError(
            "rank %s waited more than %gs at the barrier — a peer is "
            "dead or stuck (deadlock/livelock elsewhere)"
            % (rank, self.timeout))

    def abort(self, failure=None):
        """Break the barrier for every current and future waiter.
        ``failure`` (the originating exception) is propagated to them
        as the cause of their :class:`BarrierAbortedError`."""
        if failure is not None and self.failure is None:
            self.failure = failure
        self._aborted = True
        self._phase1.abort()
        self._phase2.abort()


class SkewBarrier:
    """Graphite-style lax clock synchronization bookkeeping.

    The parallel backend (``repro.sim.parallel``) lets each shard of
    simulated cores run ahead under its own clock, reconciling at
    **quantum** boundaries (every ``quantum`` simulated cycles) and —
    early — at every true sync point (:class:`ClockBarrier` rounds,
    test-and-set registers, MPB flags, send/recv rendezvous).  Because
    every cross-shard value and every cross-shard clock comparison in
    this simulator already flows through those sync primitives, the
    quantum checkpoint is pure *bookkeeping*: shards publish their
    clocks here (never blocking — a shard parked inside ``recv`` must
    not be waited on), and the recorded skew shows how far the lax
    clocks drifted between reconciliations.  Results are byte-identical
    to the sequential engine by construction, for any quantum.
    """

    DEFAULT_QUANTUM = 50_000  # simulated cycles between checkpoints

    def __init__(self, num_shards, quantum=DEFAULT_QUANTUM):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if quantum < 1:
            raise ValueError("quantum must be >= 1 cycle")
        self.num_shards = num_shards
        self.quantum = quantum
        self._lock = threading.Lock()
        self._clocks = {}              # shard -> last published clock
        self.quantum_reconciliations = [0] * num_shards
        self.sync_reconciliations = [0] * num_shards
        self.max_skew = 0              # widest clock spread observed
        self._unbind = None

    def _publish(self, shard, clock):
        self._clocks[shard] = clock
        if len(self._clocks) > 1:
            spread = max(self._clocks.values()) - min(
                self._clocks.values())
            if spread > self.max_skew:
                self.max_skew = spread

    def note_quantum(self, shard, clock):
        """A shard crossed a quantum boundary: publish its clock and
        return the next quantum deadline.  Never blocks."""
        with self._lock:
            self.quantum_reconciliations[shard] += 1
            self._publish(shard, clock)
        return clock + self.quantum

    def note_sync(self, shard, clock=None):
        """A shard reached a true sync point (barrier, lock, flag,
        send/recv): an early reconciliation.  ``clock`` is optional —
        some sync ops (lock acquire/release) carry no clock."""
        with self._lock:
            self.sync_reconciliations[shard] += 1
            if clock is not None:
                self._publish(shard, clock)

    def reconciliations(self, shard):
        return (self.quantum_reconciliations[shard]
                + self.sync_reconciliations[shard])

    def total_reconciliations(self):
        return (sum(self.quantum_reconciliations)
                + sum(self.sync_reconciliations))

    def bind(self, barrier, shard_of_rank):
        """Chain onto ``barrier``'s ``on_round`` hook so every
        :class:`ClockBarrier` round records per-shard sync
        reconciliations and the published-clock skew.  Preserves any
        hook already installed (checkpointing chains the same way)."""
        previous = barrier.on_round

        def on_round(rounds):
            clocks = barrier.published_clocks()
            with self._lock:
                for rank, clock in clocks.items():
                    shard = shard_of_rank(rank)
                    self.sync_reconciliations[shard] += 1
                    self._publish(shard, clock)
            if previous is not None:
                previous(rounds)

        barrier.on_round = on_round

        def unbind():
            if barrier.on_round is on_round:
                barrier.on_round = previous

        self._unbind = unbind
        return unbind

    def merge(self, other):
        """Fold a worker replica's counters into this (coordinator)
        instance — strictly additive, plus the skew max."""
        with self._lock:
            for shard in range(self.num_shards):
                self.quantum_reconciliations[shard] += \
                    other.quantum_reconciliations[shard]
                self.sync_reconciliations[shard] += \
                    other.sync_reconciliations[shard]
            if other.max_skew > self.max_skew:
                self.max_skew = other.max_skew


class TestAndSetRegisters:
    """One atomic test-and-set register per core.

    ``owners`` tracks which rank currently holds each register — the
    input to the watchdog's wait-for-graph deadlock detection.  With no
    watchdog, ``acquire`` blocks indefinitely exactly as the hardware
    register spin would.
    """

    __test__ = False  # not a pytest class, despite the hardware's name

    def __init__(self, num_cores, watchdog=None):
        self.num_cores = num_cores
        self.watchdog = watchdog
        self._locks = [threading.Lock() for _ in range(num_cores)]
        self.acquisitions = [0] * num_cores
        self.owners = {}  # register index -> holding rank
        # race detector (repro.race): release->acquire ordering edges
        self.race = None

    def contended(self, register):
        """Whether register ``register`` is currently held (the
        would-be acquirer would spin)."""
        return self._locks[register % self.num_cores].locked()

    def reset_counts(self):
        self.acquisitions = [0] * self.num_cores

    def acquire(self, register, rank=None):
        index = register % self.num_cores
        lock = self._locks[index]
        if self.watchdog is None:
            lock.acquire()
        else:
            self.watchdog.acquire_lock(lock, index, rank, self.owners)
        self.owners[index] = rank
        self.acquisitions[index] += 1
        if self.race is not None and rank is not None:
            self.race.lock_acquire(rank, ("reg", index))

    def release(self, register, rank=None):
        index = register % self.num_cores
        if self.race is not None and rank is not None:
            self.race.lock_release(rank, ("reg", index))
        # clear ownership before freeing the lock so the watchdog never
        # sees a free register with a stale owner
        self.owners.pop(index, None)
        try:
            self._locks[index].release()
        except RuntimeError:
            pass  # releasing an unheld lock is a no-op on the SCC register
