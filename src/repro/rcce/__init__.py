"""RCCE runtime emulation (van der Wijngaart et al. [29]).

Implements the RCCE 2.0 API surface the translated programs use —
``RCCE_init`` / ``RCCE_ue`` / ``RCCE_num_ues`` / ``RCCE_shmalloc`` /
``RCCE_malloc`` / ``RCCE_barrier`` / put/get / test-and-set locks —
bound to the simulated SCC: shmalloc returns shared-DRAM segments,
RCCE_malloc returns MPB segments, and every operation is priced by the
chip timing model.
"""

from repro.rcce.api import RCCEWorld, RCCECoreRuntime
from repro.rcce.sync import ClockBarrier, TestAndSetRegisters

__all__ = [
    "RCCEWorld",
    "RCCECoreRuntime",
    "ClockBarrier",
    "TestAndSetRegisters",
]
