"""RCCE two-sided communication, flags, and collectives.

The real RCCE builds synchronous ``RCCE_send``/``RCCE_recv`` on top of
one-sided put/get plus MPB flags (van der Wijngaart et al. [29]: "The
foundation of RCCE lies in one-sided put and get primitives").  The
emulation keeps that structure:

* a :class:`FlagTable` of MPB-resident synchronization flags with
  write/read/wait-until semantics and clock propagation (a waiter's
  simulated clock advances to the writer's clock — time spent spinning
  is real time);
* rendezvous :class:`Channel` pairs for send/recv, synchronous like
  RCCE's (the sender returns only after the receiver has drained the
  message), with transfer cost modelled as a bulk MPB copy each way;
* staging-area collectives (bcast / reduce / allreduce) built on the
  clock-aligning barrier.

Deadlocks in the *simulated* program (send without a matching recv,
wait on a flag nobody writes) surface as :class:`CommDeadlockError`
after a wall-clock timeout instead of hanging the host process.
"""

import threading

DEADLOCK_TIMEOUT_SECONDS = 10.0

FLAG_SET = 1
FLAG_UNSET = 0

REDUCE_OPS = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: a if a >= b else b,
    "min": lambda a, b: a if a <= b else b,
    "prod": lambda a, b: a * b,
}


class CommDeadlockError(Exception):
    """A blocking RCCE operation was never matched."""


class FlagTable:
    """MPB synchronization flags.

    Each flag lives in one UE's MPB segment; waiting on it is a remote
    poll, so the waiter pays one MPB round trip per check and its clock
    lands at ``max(own, writer's clock at the satisfying write)``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._values = {}        # flag id -> value
        self._write_clocks = {}  # flag id -> simulated clock of writer
        self._next_id = 1
        self._sequence = {}      # rank -> next allocation index
        self._allocations = []   # allocation index -> flag id

    def alloc(self, rank=0):
        """Collective, symmetric allocation: every UE's n-th call
        returns the same flag (RCCE flags live at symmetric MPB
        offsets)."""
        with self._lock:
            index = self._sequence.get(rank, 0)
            self._sequence[rank] = index + 1
            if index < len(self._allocations):
                return self._allocations[index]
            flag_id = self._next_id
            self._next_id += 1
            self._values[flag_id] = FLAG_UNSET
            self._write_clocks[flag_id] = 0
            self._allocations.append(flag_id)
            return flag_id

    def free(self, flag_id):
        with self._lock:
            self._values.pop(flag_id, None)
            self._write_clocks.pop(flag_id, None)

    def write(self, flag_id, value, clock, race=None, tid=None):
        with self._condition:
            if flag_id not in self._values:
                raise CommDeadlockError(
                    "write to unallocated flag %r" % flag_id)
            self._values[flag_id] = value
            self._write_clocks[flag_id] = clock
            if race is not None:
                # publish the writer's clock before waiters wake: the
                # release edge must be visible under the same lock
                race.flag_write(tid, flag_id)
            self._condition.notify_all()

    def read(self, flag_id, race=None, tid=None):
        with self._lock:
            if flag_id not in self._values:
                raise CommDeadlockError(
                    "read of unallocated flag %r" % flag_id)
            if race is not None:
                race.flag_sync(tid, flag_id)
            return self._values[flag_id]

    def wait_until(self, flag_id, value, clock, race=None, tid=None):
        """Block until the flag holds ``value``; returns the waiter's
        new simulated clock."""
        deadline = DEADLOCK_TIMEOUT_SECONDS
        with self._condition:
            while self._values.get(flag_id) != value:
                if flag_id not in self._values:
                    raise CommDeadlockError(
                        "wait on unallocated flag %r" % flag_id)
                if not self._condition.wait(timeout=deadline):
                    raise CommDeadlockError(
                        "flag %r never reached %r" % (flag_id, value))
            if race is not None:
                race.flag_sync(tid, flag_id)
            return max(clock, self._write_clocks.get(flag_id, 0))


class Channel:
    """One synchronous rendezvous channel for a (source, dest) pair.

    Messages optionally carry a sequence number (the recovery layer's
    :class:`~repro.recovery.retry.SendRetrier` numbers every send).
    The receiver acknowledges but does not re-deliver a duplicate
    sequence number, so a retransmitted message is idempotent."""

    def __init__(self):
        self.condition = threading.Condition()
        self.payload = None       # (values, sender_clock, seq, vc)
        self.consumed_clock = None
        self.delivered_seq = None
        self.ack_vc = None        # receiver's clock for the sender

    def send(self, values, clock, seq=None, race=None, tid=None):
        """Deposit and block until the receiver drains the message;
        returns the sender's new clock (receive-completion time)."""
        with self.condition:
            while self.payload is not None:
                if not self.condition.wait(DEADLOCK_TIMEOUT_SECONDS):
                    raise CommDeadlockError("send never matched")
            sender_vc = race.channel_send(tid) \
                if race is not None else None
            self.payload = (list(values), clock, seq, sender_vc)
            self.condition.notify_all()
            while self.consumed_clock is None:
                if not self.condition.wait(DEADLOCK_TIMEOUT_SECONDS):
                    raise CommDeadlockError("send never completed")
            done = self.consumed_clock
            self.consumed_clock = None
            if race is not None:
                race.channel_ack(tid, self.ack_vc)
                self.ack_vc = None
            self.condition.notify_all()
            return done

    def recv(self, clock, transfer_cost, race=None, tid=None):
        """Block for a message; returns (values, new_clock)."""
        with self.condition:
            while True:
                while self.payload is None:
                    if not self.condition.wait(DEADLOCK_TIMEOUT_SECONDS):
                        raise CommDeadlockError("recv never matched")
                values, sender_clock, seq, sender_vc = self.payload
                self.payload = None
                if seq is not None and seq == self.delivered_seq:
                    # duplicate retransmission: ack the sender so it
                    # unblocks, but do not deliver the payload twice
                    if race is not None:
                        self.ack_vc = race.channel_recv(tid, None)
                    self.consumed_clock = max(clock, sender_clock)
                    self.condition.notify_all()
                    continue
                if seq is not None:
                    self.delivered_seq = seq
                if race is not None:
                    self.ack_vc = race.channel_recv(tid, sender_vc)
                done = max(clock, sender_clock) + transfer_cost
                self.consumed_clock = done
                self.condition.notify_all()
                return values, done


class MessageFabric:
    """All channels of one RCCE world."""

    def __init__(self):
        self._channels = {}
        self._lock = threading.Lock()

    def channel(self, source, dest):
        key = (source, dest)
        with self._lock:
            if key not in self._channels:
                self._channels[key] = Channel()
            return self._channels[key]


class CollectiveArea:
    """Staging memory for bcast/reduce/allreduce.

    Collectives are round-numbered by each UE's *own* collective
    sequence counter — correct because RCCE programs are SPMD and every
    UE issues collectives in the same order.  A round's staging is
    retired once every party has read it.
    """

    def __init__(self, barrier, parties):
        self.barrier = barrier
        self.parties = parties
        self._lock = threading.Lock()
        self._deposits = {}
        self._readers = {}

    def exchange(self, rank, clock, values, round_id):
        """Deposit ``values`` under ``round_id``, synchronize, and
        return (everyone's deposits, aligned clock)."""
        with self._lock:
            self._deposits.setdefault(round_id, {})[rank] = list(values)
        clock = self.barrier.wait(rank, clock)
        with self._lock:
            snapshot = dict(self._deposits[round_id])
            readers = self._readers.get(round_id, 0) + 1
            self._readers[round_id] = readers
            if readers == self.parties:
                del self._deposits[round_id]
                del self._readers[round_id]
        return snapshot, clock

    @staticmethod
    def reduce(deposits, op):
        """Element-wise reduction over every rank's deposit."""
        if op not in REDUCE_OPS:
            raise ValueError("unknown reduction op %r" % op)
        combine = REDUCE_OPS[op]
        ranks = sorted(deposits)
        result = list(deposits[ranks[0]])
        for rank in ranks[1:]:
            values = deposits[rank]
            for index, value in enumerate(values):
                result[index] = combine(result[index], value)
        return result
