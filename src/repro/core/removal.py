"""Code removal passes (paper Appendix A, Algorithms 5-8).

Each pass follows the paper's implementation sketch: a prepopulated hash
set of names, one traversal of the IR, O(1) membership tests, and removal
of matches with everything else preserved.
"""

from repro.cfront import c_ast, ctypes
from repro.cfront.visitor import NodeTransformer
from repro.ir.passes import TransformPass

# Algorithm 7's hash set: every pthread data type.
PTHREAD_DATA_TYPES = {
    "pthread_t", "pthread_attr_t", "pthread_mutex_t",
    "pthread_mutexattr_t", "pthread_cond_t", "pthread_condattr_t",
    "pthread_barrier_t", "pthread_barrierattr_t", "pthread_key_t",
    "pthread_once_t", "pthread_rwlock_t", "pthread_spinlock_t",
}

# Algorithm 8's hash set: pthread API calls that have no RCCE
# counterpart and are simply deleted (join/self/mutex lock-unlock are
# handled by their own dedicated passes first).
PTHREAD_API_CALLS = {
    "pthread_exit", "pthread_attr_init", "pthread_attr_destroy",
    "pthread_attr_setdetachstate", "pthread_mutex_init",
    "pthread_mutex_destroy", "pthread_mutexattr_init",
    "pthread_mutexattr_destroy", "pthread_cond_init",
    "pthread_cond_destroy", "pthread_detach", "pthread_cancel",
    "pthread_setconcurrency", "pthread_yield",
    "pthread_barrier_init", "pthread_barrier_destroy",
}


def _base_typedef_name(ctype):
    """The typedef name at the root of a type, if any."""
    ctype = ctypes.strip_arrays(ctype)
    while isinstance(ctype, ctypes.PointerType):
        ctype = ctype.base
    if isinstance(ctype, ctypes.NamedType):
        return ctype.name
    return None


class _CallRemover(NodeTransformer):
    """Removes expression-statements whose expression is (or assigns
    from) a call to a name in ``names``."""

    def __init__(self, names):
        self.names = names
        self.removed = 0

    def _is_target_call(self, expr):
        if isinstance(expr, c_ast.FuncCall):
            return expr.callee_name in self.names
        if isinstance(expr, c_ast.Assignment):
            return self._is_target_call(expr.rvalue)
        if isinstance(expr, c_ast.Cast):
            return self._is_target_call(expr.expr)
        return False

    def visit_ExprStmt(self, node):
        if self._is_target_call(node.expr):
            self.removed += 1
            return None
        return self.generic_visit(node)


class RemovePthreadJoinCalls(TransformPass):
    """Algorithm 5 — remove leftover pthread_join calls.

    The thread-to-process pass already converts join loops into
    ``RCCE_barrier`` synchronization; this pass mops up any join call
    that survived (e.g. a join on a detached path)."""

    name = "remove-pthread-join-calls"

    def run(self, context):
        remover = _CallRemover({"pthread_join"})
        remover.visit(context.unit)
        return remover.removed


class RemovePthreadSelfCalls(TransformPass):
    """Algorithm 6 — replace ``pthread_self()`` with ``RCCE_ue()``."""

    name = "remove-pthread-self-calls"

    def run(self, context):
        replaced = 0
        for node in c_ast.walk(context.unit):
            if isinstance(node, c_ast.FuncCall) and \
                    node.callee_name == "pthread_self":
                node.func = c_ast.Id("RCCE_ue", node.func.coord)
                replaced += 1
        return replaced


class RemovePthreadDataTypes(TransformPass):
    """Algorithm 7 — remove declarations whose specifier is a pthread
    data type (``pthread_t threads[3];`` etc.)."""

    name = "remove-pthread-data-types"

    def run(self, context):
        transformer = _DataTypeRemover(PTHREAD_DATA_TYPES)
        transformer.visit(context.unit)
        return transformer.removed


class _DataTypeRemover(NodeTransformer):
    def __init__(self, type_names):
        self.type_names = type_names
        self.removed = 0

    def visit_DeclStmt(self, node):
        kept = []
        for decl in node.decls:
            if _base_typedef_name(decl.ctype) in self.type_names:
                self.removed += 1
            else:
                kept.append(decl)
        if not kept:
            return None
        node.decls = kept
        return node

    def visit_TranslationUnit(self, node):
        kept = []
        for decl in node.decls:
            if isinstance(decl, c_ast.Decl) and \
                    _base_typedef_name(decl.ctype) in self.type_names:
                self.removed += 1
                continue
            kept.append(self.visit(decl) or decl)
        node.decls = kept
        return node


class RemovePthreadAPICalls(TransformPass):
    """Algorithm 8 — remove remaining pthread API call statements."""

    name = "remove-pthread-api-calls"

    def run(self, context):
        remover = _CallRemover(PTHREAD_API_CALLS)
        remover.visit(context.unit)
        return remover.removed


class RemoveUnusedPrivates(TransformPass):
    """Cleanup: drop locals that are never referenced after translation
    (``rc``, ``local`` in the running example) and globals demoted to
    private that are entirely unused (``global``).

    Only removes declarations whose initializers are side-effect-free,
    so a ``int x = f();`` survives even if ``x`` is dead.
    """

    name = "remove-unused-privates"

    def run(self, context):
        unit = context.unit
        removed = 0
        # iterate: removing one dead variable can kill another's last use
        while True:
            used = _referenced_names(unit)
            transformer = _UnusedDeclRemover(used)
            transformer.visit(unit)
            c_ast.link_parents(unit)
            if transformer.removed == 0:
                break
            removed += transformer.removed
        return removed


def _referenced_names(unit):
    used = set()
    for node in c_ast.walk(unit):
        if isinstance(node, c_ast.Id):
            used.add(node.name)
    return used


def _has_side_effects(expr):
    if expr is None:
        return False
    for node in c_ast.walk(expr):
        if isinstance(node, (c_ast.FuncCall, c_ast.Assignment)):
            return True
        if isinstance(node, c_ast.UnaryOp) and node.op in (
                "++", "--", "p++", "p--"):
            return True
    return False


class _UnusedDeclRemover(NodeTransformer):
    def __init__(self, used_names):
        self.used_names = used_names
        self.removed = 0

    def _keep(self, decl):
        if decl.is_typedef or decl.ctype.is_function:
            return True
        if decl.name in self.used_names:
            return True
        if _has_side_effects(decl.init):
            return True
        self.removed += 1
        return False

    def visit_DeclStmt(self, node):
        node.decls = [d for d in node.decls if self._keep(d)]
        if not node.decls:
            return None
        return node

    def visit_TranslationUnit(self, node):
        kept = []
        for decl in node.decls:
            if isinstance(decl, c_ast.Decl) and not self._keep(decl):
                continue
            kept.append(self.visit(decl) or decl)
        node.decls = kept
        return node

    def visit_FuncDef(self, node):
        # never remove parameters; only recurse into the body
        self.visit(node.body)
        return node
