"""Read/write access classification for expressions.

The counting rules (documented here because Table 4.1 of the paper was
produced by hand and is not perfectly self-consistent — see
EXPERIMENTS.md):

* a local declaration with an initializer writes the declared variable
  once (``int tmp = 1`` — paper counts tmp Wr=1);
* a *global* initializer is static initialization, not a runtime write
  (paper: ``int sum[3] = {0}`` contributes nothing to sum's Def In);
* plain assignment writes the lvalue's base variable;
* compound assignment (``+=`` etc.) reads and writes the base variable;
* ``++``/``--`` read and write their operand's base;
* taking an address (``&threads[local]``) reads the array/variable;
* dereferencing reads the pointer variable (the pointee is only known
  after Stage 3);
* every other appearance of a name in an expression is a read;
* array subscripts inside an lvalue are reads of the index variables.
"""

from repro.cfront import c_ast


class Access:
    """One classified access to a named variable."""

    __slots__ = ("name", "kind", "function", "node", "weight")

    READ = "read"
    WRITE = "write"

    def __init__(self, name, kind, function, node, weight=1):
        self.name = name
        self.kind = kind
        self.function = function
        self.node = node
        self.weight = weight

    def __repr__(self):
        return "Access(%s %s in %s x%d)" % (
            self.kind, self.name, self.function, self.weight)


def base_variable(expr):
    """The named variable an lvalue expression ultimately designates,
    or None (e.g. writes through a dereference hit an unknown pointee)."""
    while True:
        if isinstance(expr, c_ast.Id):
            return expr.name
        if isinstance(expr, c_ast.ArrayRef):
            expr = expr.base
        elif isinstance(expr, c_ast.MemberRef):
            expr = expr.base
        elif isinstance(expr, c_ast.Cast):
            expr = expr.expr
        else:
            return None


def classify_expr(expr, function, weight=1, out=None):
    """Classify every variable access in ``expr``.

    Returns a list of :class:`Access`.  ``weight`` is the loop-trip
    multiplier used for the frequency-weighted counts Stage 4 consumes.
    """
    if out is None:
        out = []
    _walk_expr(expr, function, weight, out, context="read")
    return out


def _emit(out, name, kind, function, node, weight):
    if name is not None:
        out.append(Access(name, kind, function, node, weight))


def _walk_expr(expr, function, weight, out, context):
    if expr is None:
        return
    if isinstance(expr, c_ast.Id):
        kind = Access.WRITE if context == "write" else Access.READ
        _emit(out, expr.name, kind, function, expr, weight)
        return
    if isinstance(expr, c_ast.Constant) or \
            isinstance(expr, c_ast.StringLiteral) or \
            isinstance(expr, c_ast.SizeofType):
        return
    if isinstance(expr, c_ast.Assignment):
        base = base_variable(expr.lvalue)
        if expr.op == "=":
            _emit(out, base, Access.WRITE, function, expr, weight)
        else:
            _emit(out, base, Access.READ, function, expr, weight)
            _emit(out, base, Access.WRITE, function, expr, weight)
        # subscripts / pointer bases inside the lvalue are reads
        _lvalue_internals(expr.lvalue, function, weight, out)
        _walk_expr(expr.rvalue, function, weight, out, "read")
        return
    if isinstance(expr, c_ast.UnaryOp):
        if expr.op in ("++", "--", "p++", "p--"):
            base = base_variable(expr.operand)
            _emit(out, base, Access.READ, function, expr, weight)
            _emit(out, base, Access.WRITE, function, expr, weight)
            _lvalue_internals(expr.operand, function, weight, out)
            return
        if expr.op == "sizeof":
            return  # unevaluated operand
        # '&', '*', arithmetic/logical unaries: operand is read
        _walk_expr(expr.operand, function, weight, out, "read")
        return
    if isinstance(expr, c_ast.BinaryOp):
        _walk_expr(expr.left, function, weight, out, "read")
        _walk_expr(expr.right, function, weight, out, "read")
        return
    if isinstance(expr, c_ast.TernaryOp):
        _walk_expr(expr.cond, function, weight, out, "read")
        _walk_expr(expr.then, function, weight, out, "read")
        _walk_expr(expr.els, function, weight, out, "read")
        return
    if isinstance(expr, c_ast.FuncCall):
        # the callee name is a function designator, not a data access
        if not isinstance(expr.func, c_ast.Id):
            _walk_expr(expr.func, function, weight, out, "read")
        for arg in expr.args:
            _walk_expr(arg, function, weight, out, "read")
        return
    if isinstance(expr, c_ast.ArrayRef):
        _walk_expr(expr.base, function, weight, out, "read")
        _walk_expr(expr.index, function, weight, out, "read")
        return
    if isinstance(expr, c_ast.MemberRef):
        _walk_expr(expr.base, function, weight, out, "read")
        return
    if isinstance(expr, c_ast.Cast):
        _walk_expr(expr.expr, function, weight, out, context)
        return
    if isinstance(expr, (c_ast.Comma, c_ast.InitList)):
        for item in expr.exprs:
            _walk_expr(item, function, weight, out, "read")
        return
    # fall back to generic traversal for anything new
    for _, child in expr.children():
        if isinstance(child, c_ast.Expression):
            _walk_expr(child, function, weight, out, "read")


def _lvalue_internals(lvalue, function, weight, out):
    """Reads performed while *locating* an lvalue (indexes, pointer
    bases), excluding the base variable itself."""
    if isinstance(lvalue, c_ast.Id):
        return
    if isinstance(lvalue, c_ast.ArrayRef):
        _lvalue_internals(lvalue.base, function, weight, out)
        _walk_expr(lvalue.index, function, weight, out, "read")
        return
    if isinstance(lvalue, c_ast.MemberRef):
        _lvalue_internals(lvalue.base, function, weight, out)
        return
    if isinstance(lvalue, c_ast.UnaryOp) and lvalue.op == "*":
        # writing through *p reads the pointer p
        _walk_expr(lvalue.operand, function, weight, out, "read")
        return
    if isinstance(lvalue, c_ast.Cast):
        _lvalue_internals(lvalue.expr, function, weight, out)
        return
    _walk_expr(lvalue, function, weight, out, "read")
