"""Dynamic (runtime) shared-data detection — the related-work
comparator.

The paper argues for *compile-time* identification of shared data and
contrasts it with runtime detectors that "require multiple runs of the
application" (§1, §2).  This module implements such a detector: run the
multithreaded program under the interpreter with an access tracer and
report every variable physically touched by more than one thread.

Its purpose here is validation: the static Stages 1-3 must produce a
**conservative superset** — every dynamically-shared variable must be
statically classified shared (soundness), while the static set may be
larger (conservatism).  ``compare_static_dynamic`` computes both sides;
the property is asserted over the whole benchmark corpus in
``tests/integration/test_superset_property.py`` and measured in
``benchmarks/bench_ablation_superset.py``.
"""

from repro.cfront.frontend import parse_program
from repro.scc.chip import SCCChip
from repro.scc.config import Table61Config
from repro.sim.interpreter import Interpreter, ThreadExit
from repro.sim.machine import Memory
from repro.sim.pthread_rt import PthreadRuntime
from repro.sim.trace import AccessTracer
from repro.core.framework import TranslationFramework


class SharingComparison:
    """Static-vs-dynamic sharing sets for one program."""

    def __init__(self, static_shared, dynamic_shared, observed):
        self.static_shared = static_shared      # set of (function, name)
        self.dynamic_shared = dynamic_shared
        self.observed = observed

    @property
    def is_conservative_superset(self):
        """Soundness: nothing dynamically shared was missed."""
        return self.dynamic_shared <= self.static_shared

    @property
    def missed(self):
        """Dynamically shared but statically private: unsound misses."""
        return self.dynamic_shared - self.static_shared

    @property
    def overapproximation(self):
        """Statically shared but never observed shared: the price of
        compile-time conservatism."""
        return self.static_shared - self.dynamic_shared

    @property
    def tightness(self):
        """|dynamic| / |static| in [0, 1]; 1.0 = perfectly tight."""
        if not self.static_shared:
            return 1.0
        return len(self.dynamic_shared & self.static_shared) / \
            len(self.static_shared)

    def __repr__(self):
        return ("SharingComparison(static=%d, dynamic=%d, missed=%d, "
                "tightness=%.2f)" % (len(self.static_shared),
                                     len(self.dynamic_shared),
                                     len(self.missed), self.tightness))


def detect_dynamic_sharing(source, max_steps=200_000_000):
    """Run the Pthreads program once and return
    ``(shared_keys, observed_keys)`` — variables touched by >1 thread
    and all variables touched at all."""
    unit = parse_program(source) if isinstance(source, str) else source
    chip = SCCChip(Table61Config())
    runtime = PthreadRuntime()
    tracer = AccessTracer(
        thread_of=lambda interp: runtime._current_tid[-1])
    interp = Interpreter(unit, chip, 0, Memory(), runtime,
                         max_steps, tracer=tracer)
    try:
        interp.run_main()
    except ThreadExit:
        pass
    runtime.run_pending(interp)
    return tracer.shared_keys(), tracer.observed_keys()


def static_shared_set(source):
    """Stage 1-3's shared superset, as (function, name) keys."""
    result = TranslationFramework().analyze(source)
    return {(info.function, info.name)
            for info in result.variables if info.is_shared}


def compare_static_dynamic(source, max_steps=200_000_000):
    """Full comparison for one program."""
    if isinstance(source, str):
        unit = parse_program(source)
    else:
        unit = source
    static = static_shared_set(unit)
    # re-parse for the dynamic run: the analysis does not mutate the
    # tree, but isolation keeps the comparison honest
    dynamic, observed = detect_dynamic_sharing(source if isinstance(
        source, str) else unit, max_steps)
    return SharingComparison(static, dynamic, observed)
