"""Stage 1 — Variable Scope Analysis (paper §4.1).

Extracts, per variable: name, type, size, read count, write count, scope,
and the functions each variable is used/defined in (Table 4.1).  Globals
are provisionally marked ``shared = true``; everything else stays ``null``
until Stage 2 (Table 4.2, column "Stage 1").

Two passes, as in the paper: one constrained to procedure bodies (locals
and parameters), one over file scope with procedures excluded (globals).
"""

from repro.cfront import c_ast
from repro.ir.loops import estimate_trip_count
from repro.ir.passes import AnalysisPass
from repro.core.accesses import Access, classify_expr
from repro.core.varinfo import Sharing, VariableInfo, VariableTable

STAGE = 1

# Names that look like identifiers but are functions or environment
# constants, never data variables of the program under analysis.
_ENVIRONMENT_NAMES = {
    "NULL", "stdout", "stderr", "stdin",
    "RCCE_COMM_WORLD", "PTHREAD_MUTEX_INITIALIZER",
}

# Cap on the loop multiplier so one hot loop cannot overflow the
# frequency weighting (trip estimates are heuristics, not measurements).
_MAX_WEIGHT = 10 ** 9


class ScopeAnalysis(AnalysisPass):
    """Builds the :class:`VariableTable` fact ``variables``."""

    name = "stage1-variable-scope-analysis"
    provides = ("variables",)

    def run(self, context):
        unit = context.unit
        table = VariableTable()
        self._collect_globals(unit, table)
        self._collect_locals(unit, table)
        self._count_accesses(unit, table)
        for info in table:
            if info.scope_kind == "global":
                info.set_sharing(Sharing.TRUE, STAGE)
            else:
                info.record_stage(STAGE)
        return context.provide("variables", table)

    def profile_stats(self, context):
        table = context.facts.get("variables")
        if table is None:
            return {}
        return {
            "variables_classified": len(table),
            "globals": sum(1 for info in table
                           if info.scope_kind == "global"),
        }

    # -- declaration harvesting -------------------------------------------------

    def _collect_globals(self, unit, table):
        for decl in unit.global_decls():
            if decl.is_typedef:
                continue
            table.add(VariableInfo(decl.name, decl.ctype, "global",
                                   None, decl))

    def _collect_locals(self, unit, table):
        for func in unit.functions():
            for param in func.params:
                if param.name:
                    table.add(VariableInfo(param.name, param.ctype,
                                           "param", func.name, param))
            for node in c_ast.walk(func.body):
                if isinstance(node, c_ast.DeclStmt):
                    for decl in node.decls:
                        if not decl.is_typedef:
                            table.add(VariableInfo(
                                decl.name, decl.ctype, "local",
                                func.name, decl))

    # -- access counting ----------------------------------------------------------

    def _count_accesses(self, unit, table):
        for func in unit.functions():
            for access in self._function_accesses(func):
                self._apply(access, table)

    def _function_accesses(self, func):
        accesses = []
        self._walk_stmt(func.body, func.name, 1, accesses)
        return accesses

    def _walk_stmt(self, stmt, function, weight, out):
        if stmt is None:
            return
        if isinstance(stmt, c_ast.Compound):
            for item in stmt.items:
                self._walk_stmt(item, function, weight, out)
            return
        if isinstance(stmt, c_ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    # decl-with-init is one runtime write of the local
                    out.append(Access(decl.name, Access.WRITE, function,
                                      decl, weight))
                    classify_expr(decl.init, function, weight, out)
            return
        if isinstance(stmt, c_ast.ExprStmt):
            classify_expr(stmt.expr, function, weight, out)
            return
        if isinstance(stmt, c_ast.If):
            classify_expr(stmt.cond, function, weight, out)
            self._walk_stmt(stmt.then, function, weight, out)
            self._walk_stmt(stmt.els, function, weight, out)
            return
        if isinstance(stmt, (c_ast.While, c_ast.DoWhile)):
            trips, _ = estimate_trip_count(stmt)
            inner = min(weight * max(trips, 1), _MAX_WEIGHT)
            classify_expr(stmt.cond, function, inner, out)
            self._walk_stmt(stmt.body, function, inner, out)
            return
        if isinstance(stmt, c_ast.For):
            trips, _ = estimate_trip_count(stmt)
            inner = min(weight * max(trips, 1), _MAX_WEIGHT)
            self._walk_stmt(stmt.init, function, weight, out)
            if stmt.cond is not None:
                classify_expr(stmt.cond, function, inner, out)
            if stmt.step is not None:
                classify_expr(stmt.step, function, inner, out)
            self._walk_stmt(stmt.body, function, inner, out)
            return
        if isinstance(stmt, c_ast.Return):
            if stmt.expr is not None:
                classify_expr(stmt.expr, function, weight, out)
            return
        if isinstance(stmt, c_ast.Switch):
            classify_expr(stmt.cond, function, weight, out)
            for item in stmt.body.items:
                for inner_stmt in item.stmts:
                    self._walk_stmt(inner_stmt, function, weight, out)
                if isinstance(item, c_ast.Case):
                    pass  # case labels are constants
            return
        if isinstance(stmt, c_ast.Label):
            self._walk_stmt(stmt.stmt, function, weight, out)
            return
        # Break / Continue / EmptyStmt / Goto: no data accesses

    def _apply(self, access, table):
        if access.name in _ENVIRONMENT_NAMES:
            return
        info = table.get(access.name, access.function)
        if info is None:
            return  # call to an undeclared function, label, etc.
        if access.kind == Access.READ:
            info.read_count += 1
            info.weighted_reads += access.weight
            info.weighted_reads_by_function[access.function] = \
                info.weighted_reads_by_function.get(access.function, 0) \
                + access.weight
            if access.function:
                info.use_in.add(access.function)
        else:
            info.write_count += 1
            info.weighted_writes += access.weight
            info.weighted_writes_by_function[access.function] = \
                info.weighted_writes_by_function.get(access.function, 0) \
                + access.weight
            if access.function:
                info.def_in.add(access.function)
