"""Stage 2 — Inter-thread Analysis (paper §4.2, Algorithm 1).

Finds the set ``F`` of functions launched through ``pthread_create``,
classifies each variable as *In Multiple Threads* / *In Single Thread* /
*Not in Thread*, and resolves every still-``null`` sharing status:
variables declared inside a thread function (or anywhere local) are
private — each translated process gets its own copy — so they become
``shared = false`` (Table 4.2, column "Stage 2").
"""

from repro.cfront import c_ast
from repro.cfront.visitor import enclosing, find_calls, is_inside_loop
from repro.ir.loops import estimate_trip_count
from repro.ir.passes import AnalysisPass
from repro.core.varinfo import Sharing, ThreadPresence

STAGE = 2


class ThreadLaunch:
    """One pthread_create call site."""

    __slots__ = ("call", "function_name", "arg", "in_loop", "caller")

    def __init__(self, call, function_name, arg, in_loop, caller):
        self.call = call
        self.function_name = function_name
        self.arg = arg
        self.in_loop = in_loop
        self.caller = caller

    def __repr__(self):
        return "ThreadLaunch(%s%s from %s)" % (
            self.function_name, " in loop" if self.in_loop else "",
            self.caller)


def thread_function_name(expr):
    """Extract the launched function's name from pthread_create's third
    argument (handles ``tf`` and ``&tf``)."""
    if isinstance(expr, c_ast.Id):
        return expr.name
    if isinstance(expr, c_ast.UnaryOp) and expr.op == "&" and \
            isinstance(expr.operand, c_ast.Id):
        return expr.operand.name
    if isinstance(expr, c_ast.Cast):
        return thread_function_name(expr.expr)
    return None


def find_thread_launches(unit):
    """All pthread_create call sites in the program."""
    launches = []
    for func in unit.functions():
        for call in find_calls(func.body, "pthread_create"):
            if len(call.args) < 3:
                continue
            name = thread_function_name(call.args[2])
            arg = call.args[3] if len(call.args) > 3 else None
            launches.append(ThreadLaunch(call, name, arg,
                                         is_inside_loop(call), func.name))
    return launches


def launch_multiplicities(launches):
    """How many threads each thread function is launched as: the sum
    over its call sites of the enclosing loop's trip count (1 for a
    standalone pthread_create)."""
    multipliers = {}
    for launch in launches:
        if launch.function_name is None:
            continue
        count = 1
        if launch.in_loop:
            loop = enclosing(launch.call,
                             (c_ast.For, c_ast.While, c_ast.DoWhile))
            trips, _ = estimate_trip_count(loop)
            count = max(trips, 1)
        multipliers[launch.function_name] = \
            multipliers.get(launch.function_name, 0) + count
    return multipliers


def variable_in_thread(unit, info, thread_functions, launches):
    """Algorithm 1 — how many threads the variable ``info`` is seen in.

    A variable is "in" a thread if it is used or defined inside (or is a
    parameter / local of) a function executed by a thread.  Multiplicity
    comes from the launch sites: a launch inside a loop, or the same
    procedure appearing in more than one pthread_create call, means
    multiple threads.
    """
    appearing_in = set(info.use_in) | set(info.def_in)
    if info.function is not None:
        appearing_in.add(info.function)
    thread_procs = appearing_in & thread_functions
    if not thread_procs:
        return ThreadPresence.NOT_IN_THREAD
    for proc in thread_procs:
        sites = [l for l in launches if l.function_name == proc]
        if any(site.in_loop for site in sites):
            return ThreadPresence.MULTIPLE_THREADS
        if len(sites) > 1:
            return ThreadPresence.MULTIPLE_THREADS
    return ThreadPresence.SINGLE_THREAD


class InterThreadAnalysis(AnalysisPass):
    """Provides facts ``thread_launches`` and ``thread_functions`` and
    refines every variable's sharing status."""

    name = "stage2-inter-thread-analysis"
    requires = ("variables",)
    provides = ("thread_launches", "thread_functions")

    def profile_stats(self, context):
        launches = context.facts.get("thread_launches")
        if launches is None:
            return {}
        return {
            "thread_launches": len(launches),
            "thread_functions":
                len(context.facts.get("thread_functions", ())),
        }

    def run(self, context):
        table = context.require("variables")
        unit = context.unit
        c_ast.link_parents(unit)
        launches = find_thread_launches(unit)
        thread_functions = {l.function_name for l in launches
                            if l.function_name}
        context.provide("thread_launches", launches)
        context.provide("thread_functions", thread_functions)

        multipliers = launch_multiplicities(launches)
        for info in table:
            info.thread_presence = variable_in_thread(
                unit, info, thread_functions, launches)
            self._scale_weights(info, multipliers)
            if info.sharing is Sharing.NULL:
                # locals and params are per-process copies after
                # translation: private
                info.set_sharing(Sharing.FALSE, STAGE)
            else:
                info.record_stage(STAGE)
        return launches

    @staticmethod
    def _scale_weights(info, multipliers):
        """The paper's parallelism-aware access estimation (§4.4):
        accesses made inside a thread function happen once per launched
        thread, so the frequency estimates Stage 4 partitions on must
        be scaled by the launch multiplicity."""
        info.weighted_reads = sum(
            weight * multipliers.get(function, 1)
            for function, weight
            in info.weighted_reads_by_function.items())
        info.weighted_writes = sum(
            weight * multipliers.get(function, 1)
            for function, weight
            in info.weighted_writes_by_function.items())
