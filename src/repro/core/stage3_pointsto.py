"""Stage 3 — Alias and Pointer Analysis (paper §4.3, Algorithm 2).

A dataflow points-to analysis over per-function CFGs: pointer
relationships are gathered from pointer assignments (including through
function-call argument binding), merged to a fixed point, and classified
as *definite* or *possibly* — a relationship that only holds on one arm
of an if-else is merged as "possibly" (the paper calls this out
explicitly).

Algorithm 2 then walks the relationship map: for every **definite**
relationship whose pointer is shared, the pointed-to symbol becomes
shared too.  Finally, globals that are entirely unused are demoted to
private (the paper's post-Stage-3 cleanup of ``global`` in Table 4.2).
"""

from repro.cfront import c_ast
from repro.ir.cfg import build_cfg
from repro.ir.dataflow import ForwardDataflow
from repro.ir.passes import AnalysisPass
from repro.core.varinfo import Sharing

STAGE = 3

_ALLOCATORS = {"malloc", "calloc", "realloc",
               "RCCE_shmalloc", "RCCE_malloc"}


class PointsToState:
    """Lattice value: ``{pointer_key: {target_key: definite_bool}}``.

    Keys are ``(function_or_None, name)`` for variables and
    ``('heap', site)`` for allocation sites.
    """

    def __init__(self, relations=None):
        self.relations = {key: dict(targets)
                          for key, targets in (relations or {}).items()}

    def copy(self):
        return PointsToState(self.relations)

    def assign(self, pointer, targets):
        """Strong update: ``pointer`` now points exactly at ``targets``."""
        self.relations[pointer] = dict(targets)

    def targets_of(self, pointer):
        return dict(self.relations.get(pointer, {}))

    def merge(self, other):
        """Join: union of targets; definite only if definite on *all*
        paths that constrain the pointer."""
        merged = {}
        keys = set(self.relations) | set(other.relations)
        for key in keys:
            mine = self.relations.get(key)
            theirs = other.relations.get(key)
            if mine is None:
                merged[key] = {t: False for t in theirs}
            elif theirs is None:
                merged[key] = {t: False for t in mine}
            else:
                combined = {}
                for target in set(mine) | set(theirs):
                    in_both = target in mine and target in theirs
                    combined[target] = (in_both and mine[target]
                                        and theirs[target])
                merged[key] = combined
        return PointsToState(merged)

    def __eq__(self, other):
        return isinstance(other, PointsToState) and \
            self.relations == other.relations

    def __repr__(self):
        return "PointsToState(%d pointers)" % len(self.relations)


class _FunctionPointsTo(ForwardDataflow):
    """Flow-sensitive points-to over one function's CFG."""

    def __init__(self, analysis, function_name, seed):
        self.analysis = analysis
        self.function_name = function_name
        self.seed = seed

    def initial(self):
        return PointsToState()

    def boundary(self):
        return self.seed.copy()

    def merge(self, a, b):
        if not a.relations:
            return b.copy()
        if not b.relations:
            return a.copy()
        return a.merge(b)

    def transfer(self, block, value):
        state = value.copy()
        for stmt in block.statements:
            if isinstance(stmt, tuple) and stmt[0] == "branch":
                self.analysis.visit_expression(stmt[1], self.function_name,
                                               state)
                continue
            self.analysis.visit_statement(stmt, self.function_name, state)
        return state


class PointsToAnalysis:
    """Interprocedural driver: iterates per-function dataflow to a global
    fixed point, binding pointer arguments to parameters across calls."""

    MAX_ROUNDS = 20

    def __init__(self, unit, variables):
        self.unit = unit
        self.variables = variables
        self.global_state = PointsToState()
        self.param_seeds = {}   # (function, param) -> {target: definite}
        self.result = {}        # accumulated relationship map
        self._heap_counter = 0
        self._heap_sites = {}

    # -- key resolution ---------------------------------------------------------

    def resolve(self, name, function):
        info = self.variables.get(name, function)
        if info is None:
            return None
        return (info.function, info.name)

    def heap_site(self, node):
        key = id(node)
        if key not in self._heap_sites:
            self._heap_sites[key] = ("heap", self._heap_counter)
            self._heap_counter += 1
        return self._heap_sites[key]

    # -- analysis ----------------------------------------------------------------

    def analyze(self):
        functions = self.unit.functions()
        cfgs = {func.name: build_cfg(func) for func in functions}
        self.rounds = 0
        for _ in range(self.MAX_ROUNDS):
            self.rounds += 1
            before = (self._snapshot(self.global_state.relations),
                      self._snapshot_seeds())
            for func in functions:
                seed = self._seed_for(func)
                solver = _FunctionPointsTo(self, func.name, seed)
                solution = solver.solve(cfgs[func.name])
                exit_in, _ = solution[cfgs[func.name].exit.index]
                self._absorb(func.name, solution, cfgs[func.name])
                self._absorb_globals(exit_in)
            after = (self._snapshot(self.global_state.relations),
                     self._snapshot_seeds())
            if before == after:
                break
        return self.result

    def _snapshot(self, relations):
        return {k: tuple(sorted(v.items())) for k, v in relations.items()}

    def _snapshot_seeds(self):
        return {k: tuple(sorted(v.items()))
                for k, v in self.param_seeds.items()}

    def _seed_for(self, func):
        seed = PointsToState(self.global_state.relations)
        for param in func.params:
            if not param.name:
                continue
            key = (func.name, param.name)
            if key in self.param_seeds:
                seed.relations[key] = dict(self.param_seeds[key])
        return seed

    def _absorb(self, function, solution, cfg):
        """Fold every block's out-state into the final relationship map
        (the paper merges data 'updated at each statement ... with the
        existing pointer information collected before it')."""
        for block in cfg.blocks:
            _, out_state = solution[block.index]
            for pointer, targets in out_state.relations.items():
                bucket = self.result.setdefault(pointer, {})
                for target, definite in targets.items():
                    if target in bucket:
                        bucket[target] = bucket[target] and definite
                    else:
                        bucket[target] = definite

    def _absorb_globals(self, exit_state):
        for pointer, targets in exit_state.relations.items():
            if pointer[0] is None:  # a global pointer
                current = self.global_state.relations.get(pointer)
                if current is None:
                    self.global_state.relations[pointer] = dict(targets)
                else:
                    for target, definite in targets.items():
                        if target in current:
                            current[target] = current[target] and definite
                        else:
                            current[target] = definite

    # -- statement / expression visitors -------------------------------------------

    def visit_statement(self, stmt, function, state):
        if isinstance(stmt, c_ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    self._assign(decl.name, decl.init, function, state)
            return
        if isinstance(stmt, c_ast.ExprStmt):
            self.visit_expression(stmt.expr, function, state)
            return
        if isinstance(stmt, c_ast.Return) and stmt.expr is not None:
            self.visit_expression(stmt.expr, function, state)

    def visit_expression(self, expr, function, state):
        if isinstance(expr, c_ast.Assignment):
            self.visit_expression(expr.rvalue, function, state)
            if expr.op == "=" and isinstance(expr.lvalue, c_ast.Id):
                self._assign(expr.lvalue.name, expr.rvalue, function, state)
            return
        if isinstance(expr, c_ast.FuncCall):
            for arg in expr.args:
                self.visit_expression(arg, function, state)
            self._bind_call_arguments(expr, function, state)
            return
        if isinstance(expr, c_ast.Comma):
            for item in expr.exprs:
                self.visit_expression(item, function, state)
            return
        for _, child in expr.children():
            if isinstance(child, c_ast.Expression):
                self.visit_expression(child, function, state)

    def _assign(self, name, rvalue, function, state):
        pointer = self.resolve(name, function)
        if pointer is None:
            return
        info = self.variables.get(name, function)
        if info is None or not (info.ctype.is_pointer or
                                info.ctype.is_array):
            return
        targets = self._evaluate_pointer_expr(rvalue, function, state)
        if targets is not None:
            state.assign(pointer, targets)

    def _evaluate_pointer_expr(self, expr, function, state):
        """Points-to set of a pointer-valued expression, or None if the
        expression doesn't produce trackable pointer information."""
        if isinstance(expr, c_ast.Cast):
            return self._evaluate_pointer_expr(expr.expr, function, state)
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "&":
            target = self._address_target(expr.operand, function)
            if target is not None:
                return {target: True}
            return None
        if isinstance(expr, c_ast.Id):
            source = self.resolve(expr.name, function)
            if source is None:
                return None
            info = self.variables.get(expr.name, function)
            if info is not None and info.ctype.is_array:
                # arrays decay: q = arr makes q point at arr
                return {source: True}
            targets = state.targets_of(source)
            return targets if targets else None
        if isinstance(expr, c_ast.FuncCall):
            if expr.callee_name in _ALLOCATORS:
                return {self.heap_site(expr): True}
            return None
        if isinstance(expr, c_ast.BinaryOp) and expr.op in ("+", "-"):
            # pointer arithmetic stays within the pointed-at object
            left = self._evaluate_pointer_expr(expr.left, function, state)
            if left is not None:
                return left
            return self._evaluate_pointer_expr(expr.right, function, state)
        if isinstance(expr, c_ast.TernaryOp):
            then = self._evaluate_pointer_expr(expr.then, function, state)
            els = self._evaluate_pointer_expr(expr.els, function, state)
            if then is None:
                return els
            if els is None:
                return then
            merged = {}
            for target in set(then) | set(els):
                merged[target] = (then.get(target, False)
                                  and els.get(target, False))
            return merged
        return None

    def _address_target(self, operand, function):
        if isinstance(operand, c_ast.Id):
            return self.resolve(operand.name, function)
        if isinstance(operand, c_ast.ArrayRef):
            base = operand.base
            while isinstance(base, c_ast.ArrayRef):
                base = base.base
            if isinstance(base, c_ast.Id):
                return self.resolve(base.name, function)
        return None

    def _bind_call_arguments(self, call, function, state):
        """Interprocedural binding: pointer arguments seed the callee's
        parameters for the next fixpoint round."""
        callee = call.callee_name
        if callee is None:
            return
        func = self.unit.find_function(callee)
        if func is None:
            return
        for param, arg in zip(func.params, call.args):
            if not param.name:
                continue
            if not (param.ctype.is_pointer or param.ctype.is_array):
                continue
            targets = self._evaluate_pointer_expr(arg, function, state)
            if not targets:
                continue
            key = (callee, param.name)
            bucket = self.param_seeds.setdefault(key, {})
            for target, definite in targets.items():
                if target in bucket:
                    bucket[target] = bucket[target] and definite
                else:
                    bucket[target] = definite


class AliasPointerAnalysis(AnalysisPass):
    """Stage 3 pass: runs the points-to analysis, applies Algorithm 2,
    and demotes entirely-unused globals."""

    name = "stage3-alias-pointer-analysis"
    requires = ("variables",)
    provides = ("points_to",)

    def run(self, context):
        table = context.require("variables")
        analysis = PointsToAnalysis(context.unit, table)
        relations = analysis.analyze()
        context.provide("points_to", relations)
        self._fixpoint_rounds = analysis.rounds
        self._algorithm2_rounds = 0

        # Algorithm 2: shared pointer with a definite relationship makes
        # the pointed-to symbol shared.
        changed = True
        while changed:
            self._algorithm2_rounds += 1
            changed = False
            for pointer, targets in relations.items():
                pointer_info = self._lookup(table, pointer)
                if pointer_info is None or not pointer_info.is_shared:
                    continue
                for target, definite in targets.items():
                    if not definite or target[0] == "heap":
                        continue
                    target_info = self._lookup(table, target)
                    if target_info is not None and not target_info.is_shared:
                        target_info.set_sharing(Sharing.TRUE, STAGE)
                        changed = True

        # Post-processing: globals defined but entirely unused may be
        # set private (paper: variable `global` in Table 4.2).
        for info in table.globals():
            if info.access_count == 0 and info.is_shared:
                info.set_sharing(Sharing.FALSE, STAGE)

        for info in table:
            info.record_stage(STAGE)
        return relations

    def profile_stats(self, context):
        table = context.facts.get("variables")
        return {
            "pointsto_relations": len(context.facts.get("points_to",
                                                        ())),
            "pointsto_rounds": getattr(self, "_fixpoint_rounds", 0),
            "algorithm2_rounds": getattr(self, "_algorithm2_rounds", 0),
            "shared_variables": sum(1 for info in table
                                    if info.is_shared) if table else 0,
        }

    @staticmethod
    def _lookup(table, key):
        function, name = key
        if function == "heap":
            return None
        return table.get_exact(name, function)
