"""Stage 4 — Data Partitioning (paper §4.4, Algorithm 3).

Decides, for every shared variable, whether it lives in the on-chip
shared SRAM (the SCC's MPB) or the off-chip shared DRAM:

* if everything fits on-chip, put everything on-chip (best case);
* otherwise sort ascending by ``mem_size`` and place greedily while the
  remaining on-chip capacity allows, spilling the rest off-chip.

The paper notes "further granularity provided by frequency of access";
we implement that as the documented ``frequency`` policy (ablation bench
``bench_ablation_partition.py``): order by weighted-accesses-per-byte so
hot small data wins the SRAM.
"""

from enum import Enum

from repro.ir.passes import AnalysisPass


class MemoryBank(Enum):
    ON_CHIP = "on-chip"    # MPB SRAM
    OFF_CHIP = "off-chip"  # shared DRAM
    SPLIT = "split"        # head in SRAM, tail in DRAM (§4.4)

    def __str__(self):
        return self.value


class Placement:
    """One shared variable's assignment to a bank."""

    __slots__ = ("info", "bank", "offset", "on_chip_bytes")

    def __init__(self, info, bank, offset=None, on_chip_bytes=None):
        self.info = info
        self.bank = bank
        self.offset = offset
        if on_chip_bytes is None:
            on_chip_bytes = (info.mem_size
                             if bank is MemoryBank.ON_CHIP else 0)
        self.on_chip_bytes = on_chip_bytes

    def __repr__(self):
        return "Placement(%s -> %s @ %s)" % (
            self.info.name, self.bank, self.offset)


class PartitionPlan:
    """The result of Algorithm 3."""

    def __init__(self, capacity, policy):
        self.capacity = capacity
        self.policy = policy
        self.placements = {}     # (function, name) -> Placement
        self.on_chip_bytes = 0
        self.off_chip_bytes = 0

    def place(self, info, bank, on_chip_bytes=None):
        key = (info.function, info.name)
        offset = None
        if bank is MemoryBank.ON_CHIP:
            offset = self.on_chip_bytes
            self.on_chip_bytes += info.mem_size
        elif bank is MemoryBank.SPLIT:
            offset = self.on_chip_bytes
            on_chip_bytes = min(on_chip_bytes or 0, info.mem_size)
            self.on_chip_bytes += on_chip_bytes
            self.off_chip_bytes += info.mem_size - on_chip_bytes
        else:
            self.off_chip_bytes += info.mem_size
        self.placements[key] = Placement(info, bank, offset,
                                         on_chip_bytes)

    def bank_of(self, name, function=None):
        placement = self.placements.get((function, name))
        if placement is None:
            placement = self.placements.get((None, name))
        return placement.bank if placement else None

    def on_chip(self):
        return [p for p in self.placements.values()
                if p.bank is MemoryBank.ON_CHIP]

    def off_chip(self):
        return [p for p in self.placements.values()
                if p.bank is MemoryBank.OFF_CHIP]

    @property
    def total_shared_bytes(self):
        return self.on_chip_bytes + self.off_chip_bytes

    @property
    def fits_entirely_on_chip(self):
        return not self.off_chip()

    def __repr__(self):
        return ("PartitionPlan(on=%dB in %d vars, off=%dB in %d vars, "
                "cap=%dB)" % (self.on_chip_bytes, len(self.on_chip()),
                              self.off_chip_bytes, len(self.off_chip()),
                              self.capacity))


# a split smaller than this is not worth the indirection (§4.4: "a
# few rows" of the LU matrix)
MIN_SPLIT_BYTES = 64


def partition_shared_variables(shared, capacity, policy="size",
                               allow_split=False):
    """Algorithm 3 over the list of shared :class:`VariableInfo`.

    ``policy`` is ``"size"`` (the paper's ascending-size greedy),
    ``"frequency"`` (weighted accesses per byte, descending — the
    paper's suggested refinement), or ``"off-chip-only"`` (the Fig. 6.1
    baseline configuration that keeps all shared data in DRAM).

    With ``allow_split``, a variable too large for the remaining
    on-chip space is split: its head takes whatever SRAM is left, its
    tail goes to DRAM (§4.4: "larger arrays may be allocated entirely
    in DRAM or split between DRAM and SRAM").
    """
    if policy not in ("size", "frequency", "off-chip-only"):
        raise ValueError("unknown partition policy %r" % policy)
    plan = PartitionPlan(capacity, policy)
    shared = list(shared)

    if policy == "off-chip-only":
        for info in shared:
            plan.place(info, MemoryBank.OFF_CHIP)
        return plan

    total_size = sum(info.mem_size for info in shared)
    if total_size <= capacity:
        for info in shared:
            plan.place(info, MemoryBank.ON_CHIP)
        return plan

    if policy == "size":
        ordered = sorted(shared, key=lambda v: (v.mem_size, v.name))
    elif policy == "frequency":
        ordered = sorted(
            shared,
            key=lambda v: (-(v.weighted_access_count /
                             max(v.mem_size, 1)), v.mem_size, v.name))
    else:
        raise ValueError("unknown partition policy %r" % policy)

    remaining = capacity
    for info in ordered:
        if info.mem_size <= remaining:
            plan.place(info, MemoryBank.ON_CHIP)
            remaining -= info.mem_size
        elif allow_split and remaining >= MIN_SPLIT_BYTES:
            plan.place(info, MemoryBank.SPLIT,
                       on_chip_bytes=remaining)
            remaining = 0
        else:
            plan.place(info, MemoryBank.OFF_CHIP)
    return plan


class DataPartitioning(AnalysisPass):
    """Stage 4 pass: provides the ``partition_plan`` fact."""

    name = "stage4-data-partitioning"
    requires = ("variables",)
    provides = ("partition_plan",)

    def __init__(self, on_chip_capacity, policy="size",
                 allow_split=False):
        self.on_chip_capacity = on_chip_capacity
        self.policy = policy
        self.allow_split = allow_split

    def run(self, context):
        table = context.require("variables")
        plan = partition_shared_variables(
            table.shared(), self.on_chip_capacity, self.policy,
            self.allow_split)
        return context.provide("partition_plan", plan)

    def profile_stats(self, context):
        plan = context.facts.get("partition_plan")
        if plan is None:
            return {}
        return {
            "on_chip_bytes": plan.on_chip_bytes,
            "off_chip_bytes": plan.off_chip_bytes,
            "placements": len(plan.placements),
        }
