"""Per-variable records built up by Stages 1-3 (paper Tables 4.1 / 4.2).

Sharing status follows the paper's monotonicity rule: "the sharing status
may be refined from true to false or false to true once, but it will not
revert.  Changes from null are always accepted."
"""

from enum import Enum

from repro.cfront import ctypes


class Sharing(Enum):
    """Tri-state sharing status; NULL is 'not yet determined'."""

    NULL = "null"
    TRUE = "true"
    FALSE = "false"

    def __str__(self):
        return self.value


class SharingTransitionError(Exception):
    """Raised when a stage tries to flip a sharing status twice."""


class ThreadPresence(Enum):
    """Algorithm 1's return values."""

    NOT_IN_THREAD = "Not in Thread"
    SINGLE_THREAD = "In Single Thread"
    MULTIPLE_THREADS = "In Multiple Threads"

    def __str__(self):
        return self.value


class VariableInfo:
    """Everything the framework learns about one variable.

    The fields mirror Table 4.1: Name, Type, Size (element count),
    Rd, Wr, Use In, Def In — plus the scope, byte size, and the sharing
    status history (Table 4.2's three columns).
    """

    def __init__(self, name, ctype, scope_kind, function=None, decl=None):
        self.name = name
        self.ctype = ctype
        self.scope_kind = scope_kind      # 'global' | 'local' | 'param'
        self.function = function          # declaring function, or None
        self.decl = decl
        self.read_count = 0
        self.write_count = 0
        self.weighted_reads = 0           # trip-count-weighted estimate
        self.weighted_writes = 0
        # per-function weighted counts, so Stage 2 can scale accesses
        # made inside thread functions by the launch multiplicity
        # (the paper's parallelism-aware access estimation, §4.4)
        self.weighted_reads_by_function = {}
        self.weighted_writes_by_function = {}
        self.use_in = set()               # functions reading the variable
        self.def_in = set()               # functions writing the variable
        self.thread_presence = None       # ThreadPresence, set by Stage 2
        self._sharing = Sharing.NULL
        self._flipped = False
        self.sharing_history = {}         # stage number -> Sharing

    # -- sharing status with the paper's monotonicity rule -------------------

    @property
    def sharing(self):
        return self._sharing

    def set_sharing(self, value, stage):
        """Apply the once-only refinement rule and record history."""
        if not isinstance(value, Sharing):
            raise TypeError("sharing must be a Sharing enum value")
        if value is Sharing.NULL:
            raise SharingTransitionError(
                "cannot reset %s back to null" % self.name)
        if self._sharing is Sharing.NULL:
            self._sharing = value
        elif self._sharing is not value:
            if self._flipped:
                raise SharingTransitionError(
                    "sharing status of %s already refined once; "
                    "it will not revert" % self.name)
            self._flipped = True
            self._sharing = value
        self.sharing_history[stage] = self._sharing
        return self._sharing

    def record_stage(self, stage):
        """Snapshot the current status for Table 4.2 without changing it."""
        self.sharing_history[stage] = self._sharing

    @property
    def is_shared(self):
        return self._sharing is Sharing.TRUE

    # -- Table 4.1 columns ------------------------------------------------------

    @property
    def display_type(self):
        """Type column: arrays decay to pointers (paper shows int[3] as
        ``int*``); pthread handles show their typedef name."""
        if isinstance(self.ctype, ctypes.ArrayType):
            return ctypes.PointerType(
                ctypes.strip_arrays(self.ctype)).to_c()
        return self.ctype.to_c()

    @property
    def element_count(self):
        """Size column: number of elements (3 for ``int[3]``, else 1)."""
        return self.ctype.element_count()

    @property
    def mem_size(self):
        """Byte footprint (Algorithm 3's ``mem_size``: Size x Type)."""
        size = self.ctype.sizeof()
        if size == 0 and isinstance(self.ctype, ctypes.PointerType):
            size = ctypes.POINTER_SIZE
        return size

    @property
    def access_count(self):
        return self.read_count + self.write_count

    @property
    def weighted_access_count(self):
        return self.weighted_reads + self.weighted_writes

    def row(self):
        """One Table 4.1 row as a dict."""
        return {
            "name": self.name,
            "type": self.display_type,
            "size": self.element_count,
            "rd": self.read_count,
            "wr": self.write_count,
            "use_in": sorted(self.use_in) or None,
            "def_in": sorted(self.def_in) or None,
        }

    def __repr__(self):
        return ("VariableInfo(%s: %s, %s, rd=%d, wr=%d, shared=%s)"
                % (self.name, self.display_type, self.scope_kind,
                   self.read_count, self.write_count, self._sharing))


class VariableTable:
    """All variables of a program, keyed by (function-or-None, name).

    Globals live under function ``None``; locals and parameters under
    their declaring function, so shadowing names stay distinct.
    """

    def __init__(self):
        self._vars = {}

    def key(self, name, function=None):
        return (function, name)

    def add(self, info):
        self._vars[(info.function, info.name)] = info
        return info

    def get(self, name, function=None):
        """C scoping lookup: local first, then global."""
        if function is not None:
            local = self._vars.get((function, name))
            if local is not None:
                return local
        return self._vars.get((None, name))

    def get_exact(self, name, function=None):
        return self._vars.get((function, name))

    def __iter__(self):
        return iter(self._vars.values())

    def __len__(self):
        return len(self._vars)

    def __contains__(self, key):
        return key in self._vars

    def globals(self):
        return [v for v in self._vars.values() if v.scope_kind == "global"]

    def locals(self):
        return [v for v in self._vars.values() if v.scope_kind != "global"]

    def shared(self):
        """All variables currently marked shared, in stable name order."""
        return sorted((v for v in self._vars.values() if v.is_shared),
                      key=lambda v: (v.function or "", v.name))

    def by_name(self, name):
        """All variables with ``name`` regardless of scope."""
        return [v for v in self._vars.values() if v.name == name]

    def sharing_table(self):
        """Table 4.2: {name: {stage: Sharing}} for every variable."""
        return {
            info.name: dict(info.sharing_history)
            for info in self._vars.values()
        }
