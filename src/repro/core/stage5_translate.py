"""Stage 5 — Translation Framework (paper §4.5, Algorithm 4).

Converts the multithreaded program into the multiprocess RCCE program:

* ``main`` becomes ``RCCE_APP(int argc, char **argv)`` and gains
  ``int myID; myID = RCCE_ue();`` (the unit-of-execution rank that
  replaces thread IDs);
* every ``pthread_create`` becomes a direct call to the thread function
  — launches inside a loop collapse to one call with ``(void *)myID``
  as the argument, standalone launches are wrapped in
  ``if (myID == k)`` so the task runs only on its designated core;
* ``pthread_join`` loops become a single ``RCCE_barrier`` with the rest
  of the loop body hoisted out (thread index renamed to ``myID``);
* shared variables get explicit ``RCCE_shmalloc`` (off-chip) or
  ``RCCE_malloc`` (on-chip MPB) allocations per the Stage 4 plan;
* mutexes map onto the SCC's per-core test-and-set registers via
  ``RCCE_acquire_lock`` / ``RCCE_release_lock``.
"""

from repro.cfront import c_ast, ctypes
from repro.cfront.visitor import NodeTransformer, find_all
from repro.ir.passes import TransformPass
from repro.core.insertion import RCCE_ENTRY, make_call
from repro.core.stage2_interthread import thread_function_name
from repro.core.stage4_partition import MemoryBank

CORE_ID_VAR = "myID"

_LOOP_TYPES = (c_ast.For, c_ast.While, c_ast.DoWhile)


def _loop_induction_var(loop):
    if not isinstance(loop, c_ast.For):
        return None
    init = loop.init
    if isinstance(init, c_ast.DeclStmt) and len(init.decls) == 1:
        return init.decls[0].name
    if isinstance(init, c_ast.ExprStmt) and \
            isinstance(init.expr, c_ast.Assignment) and \
            isinstance(init.expr.lvalue, c_ast.Id):
        return init.expr.lvalue.name
    return None


def _contains_call(node, name):
    return bool(find_all(node, c_ast.FuncCall,
                         lambda call: call.callee_name == name))


def _references(expr, name):
    if expr is None:
        return False
    return any(isinstance(n, c_ast.Id) and n.name == name
               for n in c_ast.walk(expr))


class _Renamer(NodeTransformer):
    """Rename every ``Id(old)`` to ``Id(new)``."""

    def __init__(self, old, new):
        self.old = old
        self.new = new

    def visit_Id(self, node):
        if node.name == self.old:
            node.name = self.new
        return node


def rename_in(node, old, new):
    return _Renamer(old, new).visit(node)


def make_barrier(coord=None):
    return make_call("RCCE_barrier", [
        c_ast.UnaryOp("&", c_ast.Id("RCCE_COMM_WORLD"))], coord)


class ThreadsToProcesses(TransformPass):
    """Algorithm 4 plus the join-loop conversion of §4.5.

    With ``fold_threads=True`` the pass implements the paper's §7.2
    extension (after Cichowski et al. [6]): a create loop launching T
    threads becomes a *loop over thread indices*, striding by the UE
    count, so a program with more threads than cores still converts —
    each core runs several thread instances::

        for (tIdx = myID; tIdx < T; tIdx += RCCE_num_ues())
            tf((void *)tIdx);
    """

    name = "stage5-threads-to-processes"
    requires = ("thread_launches",)

    FOLD_INDEX_VAR = "tIdx"

    def __init__(self, thread_id_args=None, fold_threads=False):
        # Algorithm 4's user-supplied set T of thread-ID argument names;
        # arguments referencing a launch loop's induction variable are
        # detected automatically.
        self.thread_id_args = set(thread_id_args or [])
        self.fold_threads = fold_threads
        self.launch_order = {}   # function name -> order of appearance

    def run(self, context):
        unit = context.unit
        launches = context.require("thread_launches")
        if not launches:
            # still a valid single-process RCCE program: convert main
            # so RCCE_init's &argc/&argv resolve on every core
            self._convert_main(unit)
            return self.launch_order
        standalone = [l for l in launches if not l.in_loop]
        for index, launch in enumerate(standalone):
            if launch.function_name is not None:
                self.launch_order.setdefault(launch.function_name, index)
        for func in unit.functions():
            func.body.items = self._transform_block(func.body.items)
            self._collapse_barriers(func.body)
        self._convert_main(unit)
        return self.launch_order

    # -- statement rewriting -----------------------------------------------------

    def _transform_block(self, items):
        out = []
        for stmt in items:
            out.extend(self._transform_stmt(stmt))
        return out

    def _transform_stmt(self, stmt):
        if isinstance(stmt, _LOOP_TYPES):
            if _contains_call(stmt, "pthread_create"):
                return self._convert_create_loop(stmt)
            if _contains_call(stmt, "pthread_join"):
                return self._convert_join_loop(stmt)
            self._recurse(stmt)
            return [stmt]
        if isinstance(stmt, c_ast.ExprStmt):
            converted = self._convert_simple(stmt)
            if converted is not None:
                return converted
            return [stmt]
        if isinstance(stmt, c_ast.Compound):
            stmt.items = self._transform_block(stmt.items)
            return [stmt]
        self._recurse(stmt)
        return [stmt]

    def _recurse(self, stmt):
        for field in stmt._fields:
            value = getattr(stmt, field, None)
            if isinstance(value, c_ast.Compound):
                value.items = self._transform_block(value.items)
            elif isinstance(value, c_ast.Statement):
                replacement = self._transform_stmt(value)
                if len(replacement) == 1:
                    setattr(stmt, field, replacement[0])
                else:
                    setattr(stmt, field,
                            c_ast.Compound(replacement, value.coord))

    def _convert_simple(self, stmt):
        """Standalone pthread_create / pthread_join statements."""
        call = self._extract_call(stmt.expr)
        if call is None:
            return None
        if call.callee_name == "pthread_create":
            return self._standalone_create(call)
        if call.callee_name == "pthread_join":
            return [make_barrier(stmt.coord)]
        return None

    @staticmethod
    def _extract_call(expr):
        if isinstance(expr, c_ast.FuncCall):
            return expr
        if isinstance(expr, c_ast.Assignment) and \
                isinstance(expr.rvalue, c_ast.FuncCall):
            return expr.rvalue
        if isinstance(expr, c_ast.Cast) and \
                isinstance(expr.expr, c_ast.FuncCall):
            return expr.expr
        return None

    def _new_function_call(self, launch_call, use_core_id):
        proc_name = thread_function_name(launch_call.args[2])
        arg = launch_call.args[3] if len(launch_call.args) > 3 else None
        if use_core_id:
            arg = c_ast.Cast(ctypes.VOID_PTR, c_ast.Id(CORE_ID_VAR))
        args = [arg] if arg is not None else []
        return make_call(proc_name, args, launch_call.coord)

    def _standalone_create(self, call):
        proc_name = thread_function_name(call.args[2])
        arg = call.args[3] if len(call.args) > 3 else None
        use_core_id = self._arg_is_thread_id(arg, None)
        new_call = self._new_function_call(call, use_core_id)
        order = self.launch_order.get(proc_name, 0)
        guard = c_ast.BinaryOp("==", c_ast.Id(CORE_ID_VAR),
                               c_ast.Constant("int", order, str(order)))
        return [c_ast.If(guard, c_ast.Compound([new_call]), None,
                         call.coord)]

    def _arg_is_thread_id(self, arg, loop_var):
        if arg is None:
            return False
        if loop_var is not None and _references(arg, loop_var):
            return True
        return any(_references(arg, name) for name in self.thread_id_args)

    def _convert_create_loop(self, loop):
        loop_var = _loop_induction_var(loop)
        creates = find_all(loop, c_ast.FuncCall,
                           lambda c: c.callee_name == "pthread_create")
        out = []
        for call in creates:
            arg = call.args[3] if len(call.args) > 3 else None
            use_core_id = self._arg_is_thread_id(arg, loop_var)
            if self.fold_threads and use_core_id:
                folded = self._folded_call(call, loop)
                if folded is not None:
                    out.append(folded)
                    continue
            out.append(self._new_function_call(call, use_core_id))
        remnant = self._strip_calls(loop.body, {"pthread_create"})
        if remnant:
            hoisted = c_ast.Compound(remnant, loop.coord)
            if loop_var is not None:
                rename_in(hoisted, loop_var, CORE_ID_VAR)
            out.extend(hoisted.items)
        return out

    def _folded_call(self, launch_call, loop):
        """§7.2: one call per thread index assigned to this core."""
        from repro.ir.loops import estimate_trip_count

        trips, constant = estimate_trip_count(loop)
        if not constant or trips <= 0:
            return None  # unknown thread count: fall back to 1:1
        proc_name = thread_function_name(launch_call.args[2])
        index = self.FOLD_INDEX_VAR
        call = make_call(proc_name,
                         [c_ast.Cast(ctypes.VOID_PTR, c_ast.Id(index))],
                         launch_call.coord)
        fold_loop = c_ast.For(
            init=c_ast.ExprStmt(c_ast.Assignment(
                "=", c_ast.Id(index), c_ast.Id(CORE_ID_VAR))),
            cond=c_ast.BinaryOp("<", c_ast.Id(index),
                                c_ast.Constant("int", trips, str(trips))),
            step=c_ast.Assignment(
                "+=", c_ast.Id(index),
                c_ast.FuncCall(c_ast.Id("RCCE_num_ues"), [])),
            body=c_ast.Compound([call]),
            coord=launch_call.coord)
        decl = c_ast.DeclStmt([c_ast.Decl(index, ctypes.INT)])
        return c_ast.Compound([decl, fold_loop], launch_call.coord)

    def _convert_join_loop(self, loop):
        loop_var = _loop_induction_var(loop)
        out = [make_barrier(loop.coord)]
        remnant = self._strip_calls(loop.body, {"pthread_join"})
        if remnant:
            hoisted = c_ast.Compound(remnant, loop.coord)
            if loop_var is not None:
                rename_in(hoisted, loop_var, CORE_ID_VAR)
            out.extend(hoisted.items)
        return out

    def _strip_calls(self, body, names):
        """Loop body statements that are not calls in ``names``."""
        items = body.items if isinstance(body, c_ast.Compound) else [body]
        kept = []
        for stmt in items:
            if isinstance(stmt, c_ast.ExprStmt):
                call = self._extract_call(stmt.expr)
                if call is not None and call.callee_name in names:
                    continue
            kept.append(stmt)
        return kept

    @staticmethod
    def _collapse_barriers(body):
        """Merge consecutive RCCE_barrier statements into one."""
        items = []
        for stmt in body.items:
            is_barrier = (isinstance(stmt, c_ast.ExprStmt)
                          and isinstance(stmt.expr, c_ast.FuncCall)
                          and stmt.expr.callee_name == "RCCE_barrier")
            if is_barrier and items:
                prev = items[-1]
                if isinstance(prev, c_ast.ExprStmt) and \
                        isinstance(prev.expr, c_ast.FuncCall) and \
                        prev.expr.callee_name == "RCCE_barrier":
                    continue
            items.append(stmt)
        body.items = items

    # -- main conversion -----------------------------------------------------------

    def _convert_main(self, unit):
        main = unit.find_function("main")
        if main is None:
            return
        main.name = RCCE_ENTRY
        main.return_type = ctypes.INT
        main.params = [
            c_ast.Decl("argc", ctypes.INT),
            c_ast.Decl("argv",
                       ctypes.PointerType(ctypes.PointerType(ctypes.CHAR))),
        ]
        decl = c_ast.DeclStmt([c_ast.Decl(CORE_ID_VAR, ctypes.INT)])
        assign = c_ast.ExprStmt(c_ast.Assignment(
            "=", c_ast.Id(CORE_ID_VAR),
            c_ast.FuncCall(c_ast.Id("RCCE_ue"), [])))
        main.body.items[0:0] = [decl, assign]


class _ScalarPromoter(NodeTransformer):
    """Rewrite uses of a promoted shared scalar: ``name`` becomes
    ``(*name)`` and ``&name`` becomes ``name``."""

    def __init__(self, name):
        self.name = name

    def visit_UnaryOp(self, node):
        if node.op == "&" and isinstance(node.operand, c_ast.Id) and \
                node.operand.name == self.name:
            return node.operand  # &x -> x (the pointer itself)
        return self.generic_visit(node)

    def visit_Id(self, node):
        if node.name == self.name:
            return c_ast.UnaryOp("*", node, node.coord)
        return node

    def visit_Decl(self, node):
        # don't rewrite the declaration itself; do rewrite initializers
        if node.init is not None:
            node.init = self.visit(node.init)
        return node

    def visit_DeclStmt(self, node):
        node.decls = [self.visit(d) for d in node.decls]
        return node


class MutexConversion(TransformPass):
    """Convert mutex lock/unlock to the SCC's test-and-set lock API.

    Every distinct mutex variable is assigned (in order of first use)
    the test-and-set register of a core; ``pthread_mutex_lock(&m)``
    becomes ``RCCE_acquire_lock(k)`` and unlock ``RCCE_release_lock(k)``.
    ``pthread_barrier_wait`` maps to ``RCCE_barrier``.
    """

    name = "stage5-mutex-conversion"

    def __init__(self, num_cores=48):
        self.num_cores = num_cores
        self.lock_ids = {}

    def run(self, context):
        for node in c_ast.walk(context.unit):
            if not isinstance(node, c_ast.FuncCall):
                continue
            callee = node.callee_name
            if callee in ("pthread_mutex_lock", "pthread_mutex_trylock"):
                self._rewrite_lock(context, node, "RCCE_acquire_lock")
            elif callee == "pthread_mutex_unlock":
                self._rewrite_lock(context, node, "RCCE_release_lock")
            elif callee == "pthread_barrier_wait":
                node.func = c_ast.Id("RCCE_barrier")
                node.args = [c_ast.UnaryOp("&", c_ast.Id("RCCE_COMM_WORLD"))]
        return dict(self.lock_ids)

    def _mutex_name(self, arg):
        if isinstance(arg, c_ast.UnaryOp) and arg.op == "&":
            arg = arg.operand
        if isinstance(arg, c_ast.Id):
            return arg.name
        if isinstance(arg, c_ast.ArrayRef):
            base = arg.base
            if isinstance(base, c_ast.Id):
                return base.name
        return "<anonymous>"

    def _rewrite_lock(self, context, call, rcce_name):
        mutex = self._mutex_name(call.args[0]) if call.args else "<none>"
        coord = getattr(call, "coord", None)
        if mutex == "<anonymous>":
            context.diagnose(
                self.name, "warning",
                "mutex expression is not a simple variable; all such "
                "expressions share one test-and-set register", coord)
        if mutex not in self.lock_ids:
            self.lock_ids[mutex] = len(self.lock_ids) % self.num_cores
            if len(self.lock_ids) > self.num_cores:
                context.diagnose(
                    self.name, "warning",
                    "mutex %r is the %dth distinct mutex but the chip "
                    "has only %d test-and-set registers; register %d is "
                    "now shared between unrelated mutexes (may "
                    "serialize, cannot deadlock-free alias)" % (
                        mutex, len(self.lock_ids), self.num_cores,
                        self.lock_ids[mutex]), coord)
        lock_id = self.lock_ids[mutex]
        call.func = c_ast.Id(rcce_name)
        call.args = [c_ast.Constant("int", lock_id, str(lock_id))]


class SharedVariableConversion(TransformPass):
    """Make implicitly shared variables explicitly shared (Stage 4's
    transformation half): globals become pointers backed by
    ``RCCE_shmalloc`` / ``RCCE_malloc`` allocations inserted at the top
    of the main procedure, and pre-existing ``malloc`` calls for shared
    pointers are renamed to the RCCE allocator (Algorithm 3: "If
    previous malloc call B for s exists in P, Remove B").

    Shared *scalars* are promoted to pointers and every use rewritten
    to a dereference; pthread-typed globals (mutexes etc.) are skipped
    because the mutex conversion replaces them with test-and-set
    registers and the type-removal pass deletes their declarations.
    """

    name = "stage5-shared-variable-conversion"
    requires = ("variables", "partition_plan")

    def run(self, context):
        from repro.core.removal import PTHREAD_DATA_TYPES, \
            _base_typedef_name

        unit = context.unit
        table = context.require("variables")
        plan = context.require("partition_plan")
        main = unit.find_function(RCCE_ENTRY) or unit.find_function("main")
        if main is None:
            return 0

        converted = 0
        alloc_stmts = []
        for decl in unit.global_decls():
            info = table.get_exact(decl.name, None)
            if info is None or not info.is_shared:
                continue
            if _base_typedef_name(decl.ctype) in PTHREAD_DATA_TYPES:
                continue  # replaced by test-and-set registers
            bank = plan.bank_of(decl.name) or MemoryBank.OFF_CHIP
            if bank is MemoryBank.OFF_CHIP:
                allocator = "RCCE_shmalloc"
            elif bank is MemoryBank.SPLIT:
                allocator = "RCCE_shmalloc_split"
            else:
                allocator = "RCCE_malloc"
            is_scalar = not (decl.ctype.is_array or decl.ctype.is_pointer)
            if self._rename_existing_malloc(unit, decl.name, allocator):
                converted += 1
                if decl.ctype.is_array:
                    decl.ctype = ctypes.PointerType(
                        ctypes.strip_arrays(decl.ctype))
                decl.init = None
                continue
            if is_scalar:
                _ScalarPromoter(decl.name).visit(unit)
            element_type, count = self._element_shape(decl.ctype)
            split_bytes = None
            if bank is MemoryBank.SPLIT:
                placement = plan.placements.get((None, decl.name))
                split_bytes = placement.on_chip_bytes if placement else 0
            alloc_stmts.append(self._make_alloc(
                decl.name, element_type, count, allocator,
                split_bytes))
            if decl.ctype.is_array:
                decl.ctype = ctypes.PointerType(
                    ctypes.strip_arrays(decl.ctype))
            elif is_scalar:
                decl.ctype = ctypes.PointerType(decl.ctype)
            decl.init = None
            converted += 1

        main.body.items[0:0] = alloc_stmts
        return converted

    @staticmethod
    def _element_shape(ctype):
        if ctype.is_array:
            return ctypes.strip_arrays(ctype), ctype.element_count()
        if ctype.is_pointer:
            return ctype.base, 1
        return ctype, 1

    @staticmethod
    def _make_alloc(name, element_type, count, allocator,
                    split_bytes=None):
        size_expr = c_ast.BinaryOp(
            "*", c_ast.SizeofType(element_type),
            c_ast.Constant("int", count, str(count)))
        args = [size_expr]
        if split_bytes is not None:
            args.append(c_ast.Constant("int", split_bytes,
                                       str(split_bytes)))
        call = c_ast.FuncCall(c_ast.Id(allocator), args)
        cast = c_ast.Cast(ctypes.PointerType(element_type), call)
        return c_ast.ExprStmt(c_ast.Assignment("=", c_ast.Id(name), cast))

    def _rename_existing_malloc(self, unit, name, allocator):
        """If the program already mallocs ``name``, keep its size
        expression and just swap the allocator name."""
        renamed = False
        for node in c_ast.walk(unit):
            if isinstance(node, c_ast.Assignment) and node.op == "=" and \
                    isinstance(node.lvalue, c_ast.Id) and \
                    node.lvalue.name == name:
                call = node.rvalue
                if isinstance(call, c_ast.Cast):
                    call = call.expr
                if isinstance(call, c_ast.FuncCall) and \
                        call.callee_name in ("malloc", "calloc"):
                    if call.callee_name == "calloc" and len(call.args) == 2:
                        call.args = [c_ast.BinaryOp("*", call.args[0],
                                                    call.args[1])]
                    call.func = c_ast.Id(allocator)
                    renamed = True
        return renamed
