"""Code addition passes (paper Appendix B, Algorithms 9-10)."""

from repro.cfront import c_ast
from repro.ir.passes import PassError, TransformPass

# The translated entry point.  Real RCCE programs name their entry point
# RCCE_APP; the launcher invokes it on every participating core.
RCCE_ENTRY = "RCCE_APP"


def _find_main(unit):
    func = unit.find_function(RCCE_ENTRY) or unit.find_function("main")
    if func is None:
        raise PassError("program has no main / %s procedure" % RCCE_ENTRY)
    return func


def make_call(name, args, coord=None):
    """Helper: build ``name(arg, ...)`` as an expression statement."""
    call = c_ast.FuncCall(c_ast.Id(name, coord), args, coord)
    return c_ast.ExprStmt(call, coord)


class AddRCCEInitCall(TransformPass):
    """Algorithm 9 — insert ``RCCE_init(&argc, &argv);`` as the first
    statement of the main procedure."""

    name = "add-rcce-init-call"

    def run(self, context):
        func = _find_main(context.unit)
        for stmt in func.body.items:
            if isinstance(stmt, c_ast.ExprStmt) and \
                    isinstance(stmt.expr, c_ast.FuncCall) and \
                    stmt.expr.callee_name == "RCCE_init":
                return False  # already inserted
        call = make_call("RCCE_init", [
            c_ast.UnaryOp("&", c_ast.Id("argc")),
            c_ast.UnaryOp("&", c_ast.Id("argv")),
        ])
        func.body.items.insert(0, call)
        return True


class AddRCCEFinalizeCall(TransformPass):
    """Algorithm 10 — insert ``RCCE_finalize();`` just before the final
    return of the main procedure (or at the end when main has no
    return)."""

    name = "add-rcce-finalize-call"

    def run(self, context):
        func = _find_main(context.unit)
        items = func.body.items
        for stmt in items:
            if isinstance(stmt, c_ast.ExprStmt) and \
                    isinstance(stmt.expr, c_ast.FuncCall) and \
                    stmt.expr.callee_name == "RCCE_finalize":
                return False
        call = make_call("RCCE_finalize", [])
        if items and isinstance(items[-1], c_ast.Return):
            items.insert(len(items) - 1, call)
        else:
            items.append(call)
        return True


class RewriteIncludes(TransformPass):
    """Swap ``pthread.h`` for ``RCCE.h`` in the include list."""

    name = "rewrite-includes"

    def run(self, context):
        includes = []
        swapped = False
        for header in context.unit.includes:
            if header == "pthread.h":
                if "RCCE.h" not in includes:
                    includes.append("RCCE.h")
                swapped = True
            elif header not in includes:
                includes.append(header)
        if "RCCE.h" not in includes:
            includes.append("RCCE.h")
            swapped = True
        context.unit.includes = includes
        return swapped
