"""The public facade over the five-stage framework.

Typical use::

    from repro.core import TranslationFramework

    framework = TranslationFramework(on_chip_capacity=32 * 8192)
    result = framework.translate(pthread_source)
    print(result.rcce_source)          # the RCCE C program
    print(result.variables.shared())   # what Stage 3 found shared
    print(result.plan)                 # Stage 4's on/off-chip split
"""

from repro.cfront import codegen
from repro.cfront.frontend import parse_program
from repro.diagnostics import PipelineReport
from repro.ir.passes import Driver, ProgramContext
from repro.core.insertion import (
    AddRCCEFinalizeCall,
    AddRCCEInitCall,
    RewriteIncludes,
)
from repro.core.removal import (
    RemovePthreadAPICalls,
    RemovePthreadDataTypes,
    RemovePthreadJoinCalls,
    RemovePthreadSelfCalls,
    RemoveUnusedPrivates,
)
from repro.core.stage1_scope import ScopeAnalysis
from repro.core.stage2_interthread import InterThreadAnalysis
from repro.core.stage3_pointsto import AliasPointerAnalysis
from repro.core.stage4_partition import DataPartitioning
from repro.core.stage5_translate import (
    MutexConversion,
    SharedVariableConversion,
    ThreadsToProcesses,
)

# The SCC's full on-die MPB: 8 KB per core, 48 cores (paper §5.1).
DEFAULT_ON_CHIP_CAPACITY = 48 * 8 * 1024


class FrameworkResult:
    """Everything a framework run produced."""

    def __init__(self, context):
        self.context = context

    @property
    def unit(self):
        return self.context.unit

    @property
    def variables(self):
        return self.context.facts.get("variables")

    @property
    def thread_launches(self):
        return self.context.facts.get("thread_launches", [])

    @property
    def thread_functions(self):
        return self.context.facts.get("thread_functions", set())

    @property
    def points_to(self):
        return self.context.facts.get("points_to", {})

    @property
    def plan(self):
        return self.context.facts.get("partition_plan")

    @property
    def static_report(self):
        """The :class:`repro.static.StaticReport` when the run included
        the static-analysis stage; None otherwise."""
        return self.context.facts.get("static_report")

    @property
    def attribution(self):
        """The translated program's :class:`~repro.obs.attribution.
        AttributionReport` once a profiled simulation stored one (the
        ``repro analyze --bottlenecks`` flow); None otherwise."""
        return self.context.facts.get("attribution")

    @property
    def rcce_source(self):
        return codegen.generate(self.unit)

    @property
    def pass_log(self):
        return list(self.context.pass_log)

    @property
    def diagnostics(self):
        return list(self.context.diagnostics)

    @property
    def report(self):
        """The run's findings as a :class:`PipelineReport`."""
        return PipelineReport(self.context.diagnostics)

    @property
    def ok(self):
        """True when no error-severity diagnostic was recorded."""
        return self.report.ok

    def sharing_table(self):
        return self.variables.sharing_table()


class TranslationFramework:
    """Five-stage Pthreads-to-RCCE analysis and translation pipeline."""

    def __init__(self, on_chip_capacity=DEFAULT_ON_CHIP_CAPACITY,
                 partition_policy="size", num_cores=48,
                 thread_id_args=None, fold_threads=False,
                 allow_split=False, verbose=False, profiler=None,
                 strict=True, static_check=False):
        self.on_chip_capacity = on_chip_capacity
        self.partition_policy = partition_policy
        self.num_cores = num_cores
        self.thread_id_args = thread_id_args
        # §7.2 extension: translate T threads onto fewer cores by
        # striding thread indices across UEs (many-to-one mapping)
        self.fold_threads = fold_threads
        # §4.4 extension: split oversized arrays between SRAM and DRAM
        self.allow_split = allow_split
        self.verbose = verbose
        # optional repro.obs.profile.PipelineProfiler: spans around
        # every stage/pass of each pipeline run
        self.profiler = profiler
        # strict=False degrades gracefully: a failing pass becomes an
        # error Diagnostic on the result instead of an exception
        self.strict = strict
        # opt-in translation-time checks (repro.static); off by
        # default so the pipeline output is byte-identical without it
        self.static_check = static_check

    def _driver(self, passes):
        return Driver(passes, self.verbose, self.profiler, self.strict)

    # -- pipelines ------------------------------------------------------------

    def analysis_passes(self):
        """Stages 1-3 (plus the optional static-analysis stage)."""
        passes = [
            ScopeAnalysis(),
            InterThreadAnalysis(),
            AliasPointerAnalysis(),
        ]
        if self.static_check:
            passes.append(self._static_pass())
        return passes

    def _static_pass(self):
        # imported lazily: repro.static is optional machinery and
        # depends on repro.core submodules
        from repro.static import StaticAnalysisStage
        return StaticAnalysisStage(num_cores=self.num_cores)

    def partition_pass(self, policy=None):
        """Stage 4."""
        return DataPartitioning(self.on_chip_capacity,
                                policy or self.partition_policy,
                                self.allow_split)

    def translation_passes(self):
        """Stage 5 (Algorithm 4 + Appendices A and B)."""
        return [
            ThreadsToProcesses(self.thread_id_args, self.fold_threads),
            MutexConversion(self.num_cores),
            SharedVariableConversion(),
            RemovePthreadJoinCalls(),
            RemovePthreadSelfCalls(),
            RemovePthreadAPICalls(),
            RemovePthreadDataTypes(),
            AddRCCEInitCall(),
            AddRCCEFinalizeCall(),
            RemoveUnusedPrivates(),
            RewriteIncludes(),
        ]

    # -- public API ---------------------------------------------------------------

    def analyze(self, source, filename="<source>"):
        """Run Stages 1-3 only; returns a :class:`FrameworkResult`."""
        context = self._context(source, filename)
        self._driver(self.analysis_passes()).run(context)
        return FrameworkResult(context)

    def check(self, source, filename="<source>"):
        """Run Stages 1-3 plus the static-analysis stage regardless of
        the ``static_check`` flag; the result's ``static_report``
        carries the findings."""
        context = self._context(source, filename)
        passes = [
            ScopeAnalysis(),
            InterThreadAnalysis(),
            AliasPointerAnalysis(),
            self._static_pass(),
        ]
        self._driver(passes).run(context)
        return FrameworkResult(context)

    def partition(self, source, filename="<source>", policy=None):
        """Run Stages 1-4; returns a :class:`FrameworkResult`."""
        context = self._context(source, filename)
        passes = self.analysis_passes() + [self.partition_pass(policy)]
        self._driver(passes).run(context)
        return FrameworkResult(context)

    def translate(self, source, filename="<source>", policy=None):
        """Run the full five-stage pipeline; the result's
        ``rcce_source`` is the translated RCCE program."""
        context = self._context(source, filename)
        passes = (self.analysis_passes()
                  + [self.partition_pass(policy)]
                  + self.translation_passes())
        self._driver(passes).run(context)
        return FrameworkResult(context)

    @staticmethod
    def _context(source, filename):
        if isinstance(source, str):
            unit = parse_program(source, filename)
        else:
            unit = source  # an already-parsed TranslationUnit
        return ProgramContext(unit)
