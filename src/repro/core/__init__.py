"""The paper's contribution: the five-stage Pthreads-to-HSM framework.

Stage 1 (:mod:`stage1_scope`) — variable scope analysis,
Stage 2 (:mod:`stage2_interthread`) — inter-thread analysis (Algorithm 1),
Stage 3 (:mod:`stage3_pointsto`) — alias & points-to analysis (Algorithm 2),
Stage 4 (:mod:`stage4_partition`) — data partitioning (Algorithm 3),
Stage 5 (:mod:`stage5_translate`) — threads-to-processes translation
(Algorithm 4) plus the removal/insertion passes of Appendices A and B.

:class:`~repro.core.framework.TranslationFramework` is the public facade.
"""

from repro.core.varinfo import Sharing, VariableInfo, VariableTable
from repro.core.framework import TranslationFramework, FrameworkResult
from repro.core.stage4_partition import MemoryBank, PartitionPlan

__all__ = [
    "Sharing",
    "VariableInfo",
    "VariableTable",
    "TranslationFramework",
    "FrameworkResult",
    "MemoryBank",
    "PartitionPlan",
]
