"""Render the paper's analysis tables from a framework run.

``table_4_1`` reproduces Table 4.1 (per-variable information post
Stage 3) and ``table_4_2`` reproduces Table 4.2 (sharing status after
each stage) for any analyzed program.
"""

from repro.core.varinfo import Sharing


def _fmt_funcs(functions):
    if not functions:
        return "null"
    return ", ".join(sorted(functions))


def table_4_1(result):
    """Rows of Table 4.1 as dicts, in declaration order."""
    rows = []
    for info in result.variables:
        rows.append({
            "name": info.name,
            "type": info.display_type if info.scope_kind != "param"
            else "n/a",
            "size": info.element_count if info.scope_kind != "param"
            else "n/a",
            "rd": info.read_count,
            "wr": info.write_count,
            "use_in": _fmt_funcs(info.use_in),
            "def_in": _fmt_funcs(info.def_in),
        })
    return rows


def table_4_2(result):
    """Rows of Table 4.2: sharing status after Stages 1, 2 and 3."""
    rows = []
    for info in result.variables:
        history = info.sharing_history
        rows.append({
            "variable": info.name,
            "stage1": str(history.get(1, Sharing.NULL)),
            "stage2": str(history.get(2, Sharing.NULL)),
            "stage3": str(history.get(3, Sharing.NULL)),
        })
    return rows


def format_table(rows, columns=None, title=None):
    """ASCII-render a list of row dicts."""
    if not rows:
        return "(empty table)"
    columns = columns or list(rows[0])
    widths = {col: max(len(str(col)),
                       max(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(
            str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)
