"""Deterministic, seed-driven hardware fault injection for the SCC model.

The paper's platform has no safety net — non-coherent caches, raw
test-and-set registers, software barriers — so a robust runtime must
survive (or at least *diagnose*) transient hardware misbehaviour.  This
module perturbs the simulated chip on demand:

``mpb_flip``
    transient single-bit flips on MPB-segment reads;
``dram_flip``
    transient single-bit flips on private/shared DRAM reads;
``mesh_delay``
    mesh-link latency degradation (extra cycles on priced accesses);
``mesh_drop``
    mesh message drops — the access is retransmitted, paying its cost
    twice;
``core_stall``
    a core freezes for N cycles once it passes a chosen cycle;
``core_crash``
    a core dies (raises :class:`CoreCrashFault`) once it passes a
    chosen cycle.

Beyond the chip-level kinds above, three **host-level** kinds target
the *worker processes* of the parallel backend (``repro.sim.parallel``)
rather than the simulated hardware — the CLI takes them via
``--chaos`` (or mixed into ``--faults``; :func:`split_host_rules`
separates the two families):

``worker_kill``
    a shard's worker process exits abruptly (``os._exit``) at a chosen
    quantum tick — recovery must replay it;
``worker_stall``
    a shard's worker process sleeps ``seconds`` wall seconds at a
    chosen quantum tick — the heartbeat supervisor must detect it;
``ipc_delay``
    coordinator-bound IPC sends sleep ``seconds`` before transmitting
    (wall-clock only: simulated results are unaffected by design).

One layer further up, two **service-level** kinds target the job
service's worker processes (``repro serve --chaos``; see
:class:`ServeFaultPlan`):

``job_kill``
    a job's worker process exits abruptly at the start of a chosen
    attempt — the scheduler's retry policy must absorb it;
``job_stall``
    a job's worker sleeps ``seconds`` wall seconds before running —
    deadline enforcement must detect and kill it.

Faults are configured by a small textual spec (see
:func:`parse_fault_spec`)::

    mpb_flip:p=1e-6,seed=7
    mesh_drop:p=0.01,seed=3;core_stall:core=2,at=50000,cycles=8000
    worker_kill:shard=1,at_tick=3;ipc_delay:p=0.1,seconds=0.002

**Determinism contract.**  Every rule owns one pseudo-random stream
*per core*, seeded from ``(rule seed, rule index, core id)``.  A core's
memory accesses happen in a deterministic order inside its own thread,
so injection decisions are reproducible run-to-run regardless of how
the host schedules the simulator threads.  With no rules active the
injector is never consulted: the chip and interpreter hooks are single
``is not None`` branches, keeping cycles and traces byte-identical to
an un-faulted build.

Fault runs execute on the reference tree-walking engine (the runners
force ``engine="tree"``): the closure-compiled engine inlines its
memory fast paths, and the two engines are differentially verified to
produce identical cycles, so nothing is lost.

Every injection increments a ``fault_injections{kind,core}`` counter in
the chip's metrics registry and, when a tracer is attached, emits a
``fault_inject`` instant event on the victim core's track.
"""

import random
import struct

from repro.scc.memmap import SegmentKind
from repro.sim.interpreter import InterpreterError

MPB_FLIP = "mpb_flip"
DRAM_FLIP = "dram_flip"
MESH_DELAY = "mesh_delay"
MESH_DROP = "mesh_drop"
CORE_STALL = "core_stall"
CORE_CRASH = "core_crash"

FAULT_KINDS = (MPB_FLIP, DRAM_FLIP, MESH_DELAY, MESH_DROP, CORE_STALL,
               CORE_CRASH)

# Host-level kinds target the parallel backend's worker processes, not
# the simulated chip (see HostFaultPlan).
WORKER_KILL = "worker_kill"
WORKER_STALL = "worker_stall"
IPC_DELAY = "ipc_delay"

HOST_FAULT_KINDS = (WORKER_KILL, WORKER_STALL, IPC_DELAY)

# Service-level kinds target the job service's worker processes
# (repro.serve), one supervision layer above the parallel backend
# (see ServeFaultPlan).
JOB_KILL = "job_kill"
JOB_STALL = "job_stall"

SERVE_FAULT_KINDS = (JOB_KILL, JOB_STALL)
ALL_FAULT_KINDS = FAULT_KINDS + HOST_FAULT_KINDS + SERVE_FAULT_KINDS

# Per-kind recognised parameters (beyond the common p= and seed=).
_KIND_PARAMS = {
    MPB_FLIP: ("bit", "bits"),
    DRAM_FLIP: ("bit", "bits"),
    MESH_DELAY: ("cycles",),
    MESH_DROP: (),
    CORE_STALL: ("core", "at", "cycles"),
    CORE_CRASH: ("core", "at"),
    WORKER_KILL: ("shard", "at_tick"),
    WORKER_STALL: ("shard", "at_tick", "seconds"),
    IPC_DELAY: ("seconds",),
    JOB_KILL: ("job", "attempt"),
    JOB_STALL: ("job", "attempt", "seconds"),
}

# Parameters that keep their fractional part (wall-clock seconds);
# everything else is a cycle count / index and coerces to int.
_FLOAT_PARAMS = frozenset(["seconds"])

DEFAULT_DELAY_CYCLES = 50
DEFAULT_STALL_CYCLES = 10_000
DEFAULT_STALL_SECONDS = 30.0
DEFAULT_IPC_DELAY_SECONDS = 0.001


class FaultSpecError(ValueError):
    """Malformed ``--faults`` specification."""


class CoreCrashFault(InterpreterError):
    """An injected fault killed a simulated core."""

    def __init__(self, message, core=None, cycle=None):
        super().__init__(message)
        self.core = core
        self.cycle = cycle


class FaultRule:
    """One parsed fault clause."""

    __slots__ = ("kind", "p", "seed", "params")

    def __init__(self, kind, p=1.0, seed=0, params=None):
        if kind not in ALL_FAULT_KINDS:
            raise FaultSpecError(
                "unknown fault kind %r (choose from %s)"
                % (kind, ", ".join(ALL_FAULT_KINDS)))
        if not 0.0 <= p <= 1.0:
            raise FaultSpecError("probability p=%r outside [0, 1]" % p)
        self.kind = kind
        self.p = p
        self.seed = seed
        self.params = dict(params or {})

    def __repr__(self):
        extra = "".join(",%s=%s" % kv for kv in sorted(
            self.params.items()))
        return "FaultRule(%s:p=%g,seed=%d%s)" % (self.kind, self.p,
                                                 self.seed, extra)


def _parse_number(key, text):
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        value = float(text)
    except ValueError:
        raise FaultSpecError("parameter %s=%r is not a number"
                             % (key, text))
    if value == int(value) and "e" not in text.lower() \
            and "." not in text:
        return int(value)
    return value


def parse_fault_spec(spec):
    """Parse a fault spec string into a list of :class:`FaultRule`.

    Grammar: clauses separated by ``;``; each clause is
    ``kind[:key=value[,key=value...]]``.  Common keys: ``p``
    (injection probability per opportunity, default 1.0) and ``seed``
    (per-rule RNG seed, default 0).
    """
    if isinstance(spec, (list, tuple)):
        return [rule if isinstance(rule, FaultRule) else FaultRule(**rule)
                for rule in spec]
    rules = []
    for clause in str(spec).split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, tail = clause.partition(":")
        kind = kind.strip()
        if kind not in ALL_FAULT_KINDS:
            raise FaultSpecError(
                "unknown fault kind %r (choose from %s)"
                % (kind, ", ".join(ALL_FAULT_KINDS)))
        p, seed, params = 1.0, 0, {}
        if tail.strip():
            for item in tail.split(","):
                item = item.strip()
                if not item:
                    continue
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep:
                    raise FaultSpecError(
                        "expected key=value, got %r in clause %r"
                        % (item, clause))
                number = _parse_number(key, value.strip())
                if key == "p":
                    p = float(number)
                elif key == "seed":
                    seed = int(number)
                elif key in _KIND_PARAMS[kind]:
                    params[key] = (float(number)
                                   if key in _FLOAT_PARAMS
                                   else int(number))
                else:
                    raise FaultSpecError(
                        "fault %r does not take parameter %r "
                        "(allowed: p, seed%s)"
                        % (kind, key,
                           "".join(", " + name
                                   for name in _KIND_PARAMS[kind])))
        rules.append(FaultRule(kind, p, seed, params))
    if not rules:
        raise FaultSpecError("empty fault spec %r" % spec)
    return rules


def split_host_rules(rules):
    """Split a parsed rule list into ``(chip_rules, host_rules)``.

    Chip rules feed a :class:`FaultInjector` (attached to the
    simulated chip); host rules feed a :class:`HostFaultPlan`
    (attached to the parallel backend's worker supervision).  One
    ``--faults`` spec may mix both families."""
    chip_rules, host_rules = [], []
    for rule in rules:
        (host_rules if rule.kind in HOST_FAULT_KINDS
         else chip_rules).append(rule)
    return chip_rules, host_rules


def split_serve_rules(rules):
    """Split a parsed rule list into ``(other_rules, serve_rules)``.

    Serve rules feed a :class:`ServeFaultPlan` (attached to the job
    scheduler); everything else passes through to the per-job
    chip/host families.  The daemon's ``--chaos`` spec may mix all
    three."""
    other_rules, serve_rules = [], []
    for rule in rules:
        (serve_rules if rule.kind in SERVE_FAULT_KINDS
         else other_rules).append(rule)
    return other_rules, serve_rules


def _flip_bits(value, rng, bit=None, bits=1):
    """Flip ``bits`` bits of a simulated memory word.  Integers flip
    within their low 32; floats within their IEEE-754 double image
    (which may legitimately produce huge values or NaN — that is what a
    real upset does).  Non-numeric values (pointers into the symbolic
    heap) are left alone.  ``bits>=2`` models a multi-bit upset — the
    case SECDED scrubbing (repro.recovery.ecc) detects but cannot
    correct."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    width = 32 if isinstance(value, int) else 64
    if bits <= 1:
        chosen = [bit if bit is not None else rng.randrange(width)]
    else:
        chosen = [] if bit is None else [bit % width]
        while len(chosen) < min(bits, width):
            candidate = rng.randrange(width)
            if candidate not in chosen:
                chosen.append(candidate)
    mask = 0
    for one in chosen:
        mask |= 1 << (one % width)
    if isinstance(value, int):
        return value ^ mask
    packed = struct.pack("<Q", struct.unpack(
        "<Q", struct.pack("<d", value))[0] ^ mask)
    return struct.unpack("<d", packed)[0]


_FLIP_SEGMENTS = {
    MPB_FLIP: (SegmentKind.MPB,),
    DRAM_FLIP: (SegmentKind.PRIVATE, SegmentKind.SHARED),
}


class FaultInjector:
    """Applies a list of :class:`FaultRule` to one simulated chip run.

    One injector serves one run on one chip; build a fresh injector per
    run so per-core RNG streams restart from their seeds (that is the
    determinism contract).
    """

    COLLECTOR_NAME = "faults.injector"

    def __init__(self, rules):
        if isinstance(rules, str):
            rules = parse_fault_spec(rules)
        self.rules = list(rules)
        for rule in self.rules:
            if rule.kind not in FAULT_KINDS:
                raise FaultSpecError(
                    "%s-level fault %r targets worker processes, "
                    "not the chip; route it through a %s"
                    % (("service", rule.kind, "ServeFaultPlan "
                        "(CLI: repro serve --chaos)")
                       if rule.kind in SERVE_FAULT_KINDS else
                       ("host", rule.kind, "HostFaultPlan "
                        "(CLI: --chaos, or --faults with --jobs)")))
        self.flip_rules = [
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in (MPB_FLIP, DRAM_FLIP)]
        self.latency_rules = [
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in (MESH_DELAY, MESH_DROP)]
        self.core_rules = [
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in (CORE_STALL, CORE_CRASH)]
        self.counts = {}       # (kind, core) -> injections
        self._rngs = {}        # (rule index, core) -> Random
        self._fired = set()    # one-shot core faults already delivered
        self.chip = None

    @property
    def active(self):
        return bool(self.rules)

    # -- wiring ------------------------------------------------------------

    def attach(self, chip):
        """Install this injector as ``chip.faults`` and publish its
        counters through the chip's metrics registry."""
        self.chip = chip
        chip.faults = self
        chip.metrics.register_collector(
            self.COLLECTOR_NAME, self._collect_metrics,
            self._reset_counts)
        return self

    def detach(self):
        if self.chip is not None:
            if self.chip.faults is self:
                self.chip.faults = None
            self.chip.metrics.unregister_collector(self.COLLECTOR_NAME)
            self.chip = None

    def _collect_metrics(self):
        return [("counter", "fault_injections",
                 {"kind": kind, "core": core}, count)
                for (kind, core), count in sorted(self.counts.items())]

    def _reset_counts(self):
        self.counts.clear()

    def total_injections(self, kind=None):
        return sum(count for (k, _core), count in self.counts.items()
                   if kind is None or k == kind)

    # -- deterministic randomness ------------------------------------------

    def reset_streams(self):
        """Restart every per-(rule, core) stream from its seed while
        keeping one-shot delivery state (``_fired``).  The supervisor
        calls this between restart attempts so the replayed prefix
        reproduces the original run's injection schedule exactly —
        without re-firing a crash that already fired."""
        self._rngs.clear()

    def _rng(self, rule_index, core):
        key = (rule_index, core)
        rng = self._rngs.get(key)
        if rng is None:
            seed = self.rules[rule_index].seed
            rng = self._rngs[key] = random.Random(
                (seed * 1_000_003 + rule_index * 97 + core) & 0xFFFFFFFF)
        return rng

    def _record(self, kind, core, ts, detail):
        key = (kind, core)
        self.counts[key] = self.counts.get(key, 0) + 1
        chip = self.chip
        if chip is not None and chip.events.enabled:
            args = {"kind": kind}
            args.update(detail)
            chip.events.instant(core, ts, "fault_inject", "fault",
                                args, pid=chip.trace_pid)

    # -- hooks --------------------------------------------------------------

    def filter_load(self, interp, addr, value):
        """Interpreter read hook: maybe corrupt a loaded value."""
        chip = interp.chip
        segment = None
        for index, rule in self.flip_rules:
            rng = self._rng(index, interp.core_id)
            if rng.random() >= rule.p:
                continue
            if segment is None:
                segment = chip.address_space.resolve(addr)[0]
            if segment not in _FLIP_SEGMENTS[rule.kind]:
                continue
            flipped = _flip_bits(value, rng, rule.params.get("bit"),
                                 rule.params.get("bits", 1))
            if flipped == value:
                continue
            self._record(rule.kind, interp.core_id, interp.cycles,
                         {"addr": addr, "segment": str(segment)})
            if segment is SegmentKind.MPB:
                chip.mpb.stats.corrupted_reads += 1
            value = flipped
        return value

    def latency_extra(self, core, segment, kind, cost, ts):
        """Chip pricing hook: extra cycles from link faults."""
        extra = 0
        for index, rule in self.latency_rules:
            rng = self._rng(index, core)
            if rng.random() >= rule.p:
                continue
            if rule.kind == MESH_DELAY:
                add = rule.params.get("cycles", DEFAULT_DELAY_CYCLES)
                detail = {"extra_cycles": add, "segment": str(segment)}
            else:  # MESH_DROP: the message is retransmitted end-to-end
                add = cost
                detail = {"retransmit_cycles": add,
                          "segment": str(segment)}
                if self.chip is not None:
                    self.chip.mesh.record_drop()
            extra += add
            self._record(rule.kind, core, ts, detail)
        return extra

    def message_dropped(self, core, ts, seq=None):
        """Message-level drop decision for one RCCE_send transmission.

        Only consulted by the recovery layer's SendRetrier (never on
        an unprotected run, so PR 3 behaviour is untouched); draws
        from the same per-(rule, core) streams as ``latency_extra`` so
        protected runs stay deterministic under one seed."""
        dropped = False
        for index, rule in self.latency_rules:
            if rule.kind != MESH_DROP:
                continue
            rng = self._rng(index, core)
            if rng.random() >= rule.p:
                continue
            dropped = True
            self._record(MESH_DROP, core, ts,
                         {"message": 1, "seq": seq})
            if self.chip is not None:
                self.chip.mesh.record_drop()
        return dropped

    def core_tick(self, interp):
        """Periodic per-core hook (every few hundred interpreter
        steps): deliver scheduled stalls and crashes."""
        for index, rule in self.core_rules:
            victim = rule.params.get("core", 0)
            if victim != interp.core_id:
                continue
            key = (index, interp.core_id)
            if key in self._fired:
                continue
            if interp.cycles < rule.params.get("at", 0):
                continue
            rng = self._rng(index, interp.core_id)
            if rng.random() >= rule.p:
                self._fired.add(key)  # the one chance passed unused
                continue
            self._fired.add(key)
            if rule.kind == CORE_CRASH:
                self._record(CORE_CRASH, interp.core_id, interp.cycles,
                             {"cycle": interp.cycles})
                raise CoreCrashFault(
                    "injected crash on core %d at cycle %d"
                    % (interp.core_id, interp.cycles),
                    core=interp.core_id, cycle=interp.cycles)
            stall = rule.params.get("cycles", DEFAULT_STALL_CYCLES)
            self._record(CORE_STALL, interp.core_id, interp.cycles,
                         {"cycle": interp.cycles, "stall_cycles": stall})
            interp.charge(stall)


class HostFaultPlan:
    """Deterministic host-level chaos schedule for the parallel
    backend's worker processes.

    Mirrors :class:`FaultInjector`'s determinism contract at the host
    layer: every rule owns one pseudo-random stream per *shard*
    (seeded from ``(rule seed, rule index, shard)``), and kill/stall
    decisions are evaluated only at the shard's anchor rank's quantum
    ticks — points that fall at deterministic *simulated* cycles — so
    a chaos schedule reproduces run-to-run regardless of host thread
    scheduling.  Kill and stall rules are one-shot per (rule, shard),
    exactly like ``core_stall``/``core_crash``; the coordinator feeds
    the accumulated ``fired`` set back into the plan it ships to a
    respawned worker so a delivered fault never re-fires during
    replay.  ``ipc_delay`` is continuous (drawn per send) and affects
    wall-clock time only — simulated results are byte-identical with
    or without it.

    The plan is pickled to every worker under both ``fork`` and
    ``spawn`` start methods; RNG streams are (re)built lazily on each
    side.
    """

    def __init__(self, rules, fired=None):
        if isinstance(rules, str):
            rules = parse_fault_spec(rules)
        self.rules = list(rules)
        for rule in self.rules:
            if rule.kind not in HOST_FAULT_KINDS:
                raise FaultSpecError(
                    "chip-level fault %r cannot target worker "
                    "processes; route it through a FaultInjector "
                    "(CLI: --faults)" % rule.kind)
        self.proc_rules = [
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in (WORKER_KILL, WORKER_STALL)]
        self.ipc_rules = [
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind == IPC_DELAY]
        self.fired = set(fired or ())
        self._rngs = {}

    @property
    def active(self):
        return bool(self.rules)

    def _rng(self, rule_index, shard):
        key = (rule_index, shard)
        rng = self._rngs.get(key)
        if rng is None:
            seed = self.rules[rule_index].seed
            rng = self._rngs[key] = random.Random(
                (seed * 1_000_003 + rule_index * 97 + shard)
                & 0xFFFFFFFF)
        return rng

    def on_tick(self, shard, tick):
        """Kill/stall decisions for quantum tick ``tick`` (1-based)
        of ``shard``'s anchor rank.  Returns a list of actions:
        ``("kill", rule_index, tick)`` or
        ``("stall", rule_index, tick, seconds)``."""
        actions = []
        for index, rule in self.proc_rules:
            victim = rule.params.get("shard")
            if victim is not None and victim != shard:
                continue
            key = (index, shard)
            if key in self.fired:
                continue
            if tick < rule.params.get("at_tick", 1):
                continue
            if rule.p < 1.0 \
                    and self._rng(index, shard).random() >= rule.p:
                continue
            self.fired.add(key)
            if rule.kind == WORKER_KILL:
                actions.append(("kill", index, tick))
            else:
                actions.append(
                    ("stall", index, tick,
                     rule.params.get("seconds",
                                     DEFAULT_STALL_SECONDS)))
        return actions

    def ipc_delay_seconds(self, shard):
        """Wall seconds to sleep before one coordinator-bound IPC
        send from ``shard`` (0.0 when no delay rule draws)."""
        total = 0.0
        for index, rule in self.ipc_rules:
            if rule.p < 1.0 \
                    and self._rng(index, shard).random() >= rule.p:
                continue
            total += rule.params.get("seconds",
                                     DEFAULT_IPC_DELAY_SECONDS)
        return total

    def mark_fired(self, rule_index, shard):
        """Coordinator-side bookkeeping: a worker reported delivering
        one-shot fault ``rule_index`` on ``shard``."""
        self.fired.add((rule_index, shard))

    def __getstate__(self):
        # RNG streams are rebuilt lazily on the receiving side; the
        # fired set travels so delivered one-shots never re-fire.
        return {"rules": self.rules, "fired": sorted(self.fired)}

    def __setstate__(self, state):
        self.__init__(state["rules"], fired=state["fired"])


class ServeFaultPlan:
    """Deterministic service-level chaos schedule for the job
    service's worker processes (``repro.serve``).

    One supervision layer above :class:`HostFaultPlan`: where host
    chaos kills a *shard* worker inside one run, serve chaos kills (or
    stalls) a whole *job* worker so the scheduler's deadline/retry/
    preemption machinery is exercised deterministically.  Every rule
    owns one pseudo-random stream per *job index* (seeded from
    ``(rule seed, rule index, job index)``), decisions are drawn once
    per (rule, job) at worker startup, and delivery is one-shot —
    a job that was chaos-killed on attempt N runs clean on attempt
    N+1 unless a rule names that later attempt explicitly.

    Parameters: ``job`` (submission index the rule targets; omit for
    every job), ``attempt`` (1-based attempt number the fault fires
    on, default 1), ``seconds`` (stall duration for ``job_stall``,
    default ``DEFAULT_STALL_SECONDS``).

    The plan is pickled into every job worker; RNG streams rebuild
    lazily on each side, and the scheduler feeds delivered one-shots
    back via ``mark_fired`` so a retried worker never re-fires them.
    """

    def __init__(self, rules, fired=None):
        if isinstance(rules, str):
            rules = parse_fault_spec(rules)
        self.rules = list(rules)
        for rule in self.rules:
            if rule.kind not in SERVE_FAULT_KINDS:
                raise FaultSpecError(
                    "fault %r cannot target job workers; only %s "
                    "belong in a ServeFaultPlan"
                    % (rule.kind, ", ".join(SERVE_FAULT_KINDS)))
        self.fired = set(fired or ())

    @property
    def active(self):
        return bool(self.rules)

    def _rng(self, rule_index, job_index):
        seed = self.rules[rule_index].seed
        return random.Random(
            (seed * 1_000_003 + rule_index * 97 + job_index)
            & 0xFFFFFFFF)

    def on_job_start(self, job_index, attempt=1):
        """Kill/stall decisions at the start of ``attempt`` (1-based)
        of submission ``job_index``'s worker.  Returns a list of
        actions: ``("kill", rule_index)`` or
        ``("stall", rule_index, seconds)``."""
        actions = []
        for index, rule in enumerate(self.rules):
            victim = rule.params.get("job")
            if victim is not None and victim != job_index:
                continue
            if attempt < rule.params.get("attempt", 1):
                continue
            key = (index, job_index)
            if key in self.fired:
                continue
            if rule.p < 1.0 and \
                    self._rng(index, job_index).random() >= rule.p:
                continue
            self.fired.add(key)
            if rule.kind == JOB_KILL:
                actions.append(("kill", index))
            else:
                actions.append(
                    ("stall", index,
                     rule.params.get("seconds",
                                     DEFAULT_STALL_SECONDS)))
        return actions

    def mark_fired(self, rule_index, job_index):
        """Scheduler-side bookkeeping: a worker reported delivering
        one-shot fault ``rule_index`` on submission ``job_index``."""
        self.fired.add((rule_index, job_index))

    def __getstate__(self):
        return {"rules": self.rules, "fired": sorted(self.fired)}

    def __setstate__(self, state):
        self.__init__(state["rules"], fired=state["fired"])
