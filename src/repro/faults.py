"""Deterministic, seed-driven hardware fault injection for the SCC model.

The paper's platform has no safety net — non-coherent caches, raw
test-and-set registers, software barriers — so a robust runtime must
survive (or at least *diagnose*) transient hardware misbehaviour.  This
module perturbs the simulated chip on demand:

``mpb_flip``
    transient single-bit flips on MPB-segment reads;
``dram_flip``
    transient single-bit flips on private/shared DRAM reads;
``mesh_delay``
    mesh-link latency degradation (extra cycles on priced accesses);
``mesh_drop``
    mesh message drops — the access is retransmitted, paying its cost
    twice;
``core_stall``
    a core freezes for N cycles once it passes a chosen cycle;
``core_crash``
    a core dies (raises :class:`CoreCrashFault`) once it passes a
    chosen cycle.

Faults are configured by a small textual spec (see
:func:`parse_fault_spec`)::

    mpb_flip:p=1e-6,seed=7
    mesh_drop:p=0.01,seed=3;core_stall:core=2,at=50000,cycles=8000

**Determinism contract.**  Every rule owns one pseudo-random stream
*per core*, seeded from ``(rule seed, rule index, core id)``.  A core's
memory accesses happen in a deterministic order inside its own thread,
so injection decisions are reproducible run-to-run regardless of how
the host schedules the simulator threads.  With no rules active the
injector is never consulted: the chip and interpreter hooks are single
``is not None`` branches, keeping cycles and traces byte-identical to
an un-faulted build.

Fault runs execute on the reference tree-walking engine (the runners
force ``engine="tree"``): the closure-compiled engine inlines its
memory fast paths, and the two engines are differentially verified to
produce identical cycles, so nothing is lost.

Every injection increments a ``fault_injections{kind,core}`` counter in
the chip's metrics registry and, when a tracer is attached, emits a
``fault_inject`` instant event on the victim core's track.
"""

import random
import struct

from repro.scc.memmap import SegmentKind
from repro.sim.interpreter import InterpreterError

MPB_FLIP = "mpb_flip"
DRAM_FLIP = "dram_flip"
MESH_DELAY = "mesh_delay"
MESH_DROP = "mesh_drop"
CORE_STALL = "core_stall"
CORE_CRASH = "core_crash"

FAULT_KINDS = (MPB_FLIP, DRAM_FLIP, MESH_DELAY, MESH_DROP, CORE_STALL,
               CORE_CRASH)

# Per-kind recognised parameters (beyond the common p= and seed=).
_KIND_PARAMS = {
    MPB_FLIP: ("bit", "bits"),
    DRAM_FLIP: ("bit", "bits"),
    MESH_DELAY: ("cycles",),
    MESH_DROP: (),
    CORE_STALL: ("core", "at", "cycles"),
    CORE_CRASH: ("core", "at"),
}

DEFAULT_DELAY_CYCLES = 50
DEFAULT_STALL_CYCLES = 10_000


class FaultSpecError(ValueError):
    """Malformed ``--faults`` specification."""


class CoreCrashFault(InterpreterError):
    """An injected fault killed a simulated core."""

    def __init__(self, message, core=None, cycle=None):
        super().__init__(message)
        self.core = core
        self.cycle = cycle


class FaultRule:
    """One parsed fault clause."""

    __slots__ = ("kind", "p", "seed", "params")

    def __init__(self, kind, p=1.0, seed=0, params=None):
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                "unknown fault kind %r (choose from %s)"
                % (kind, ", ".join(FAULT_KINDS)))
        if not 0.0 <= p <= 1.0:
            raise FaultSpecError("probability p=%r outside [0, 1]" % p)
        self.kind = kind
        self.p = p
        self.seed = seed
        self.params = dict(params or {})

    def __repr__(self):
        extra = "".join(",%s=%s" % kv for kv in sorted(
            self.params.items()))
        return "FaultRule(%s:p=%g,seed=%d%s)" % (self.kind, self.p,
                                                 self.seed, extra)


def _parse_number(key, text):
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        value = float(text)
    except ValueError:
        raise FaultSpecError("parameter %s=%r is not a number"
                             % (key, text))
    if value == int(value) and "e" not in text.lower() \
            and "." not in text:
        return int(value)
    return value


def parse_fault_spec(spec):
    """Parse a fault spec string into a list of :class:`FaultRule`.

    Grammar: clauses separated by ``;``; each clause is
    ``kind[:key=value[,key=value...]]``.  Common keys: ``p``
    (injection probability per opportunity, default 1.0) and ``seed``
    (per-rule RNG seed, default 0).
    """
    if isinstance(spec, (list, tuple)):
        return [rule if isinstance(rule, FaultRule) else FaultRule(**rule)
                for rule in spec]
    rules = []
    for clause in str(spec).split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, tail = clause.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                "unknown fault kind %r (choose from %s)"
                % (kind, ", ".join(FAULT_KINDS)))
        p, seed, params = 1.0, 0, {}
        if tail.strip():
            for item in tail.split(","):
                item = item.strip()
                if not item:
                    continue
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep:
                    raise FaultSpecError(
                        "expected key=value, got %r in clause %r"
                        % (item, clause))
                number = _parse_number(key, value.strip())
                if key == "p":
                    p = float(number)
                elif key == "seed":
                    seed = int(number)
                elif key in _KIND_PARAMS[kind]:
                    params[key] = int(number)
                else:
                    raise FaultSpecError(
                        "fault %r does not take parameter %r "
                        "(allowed: p, seed%s)"
                        % (kind, key,
                           "".join(", " + name
                                   for name in _KIND_PARAMS[kind])))
        rules.append(FaultRule(kind, p, seed, params))
    if not rules:
        raise FaultSpecError("empty fault spec %r" % spec)
    return rules


def _flip_bits(value, rng, bit=None, bits=1):
    """Flip ``bits`` bits of a simulated memory word.  Integers flip
    within their low 32; floats within their IEEE-754 double image
    (which may legitimately produce huge values or NaN — that is what a
    real upset does).  Non-numeric values (pointers into the symbolic
    heap) are left alone.  ``bits>=2`` models a multi-bit upset — the
    case SECDED scrubbing (repro.recovery.ecc) detects but cannot
    correct."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    width = 32 if isinstance(value, int) else 64
    if bits <= 1:
        chosen = [bit if bit is not None else rng.randrange(width)]
    else:
        chosen = [] if bit is None else [bit % width]
        while len(chosen) < min(bits, width):
            candidate = rng.randrange(width)
            if candidate not in chosen:
                chosen.append(candidate)
    mask = 0
    for one in chosen:
        mask |= 1 << (one % width)
    if isinstance(value, int):
        return value ^ mask
    packed = struct.pack("<Q", struct.unpack(
        "<Q", struct.pack("<d", value))[0] ^ mask)
    return struct.unpack("<d", packed)[0]


_FLIP_SEGMENTS = {
    MPB_FLIP: (SegmentKind.MPB,),
    DRAM_FLIP: (SegmentKind.PRIVATE, SegmentKind.SHARED),
}


class FaultInjector:
    """Applies a list of :class:`FaultRule` to one simulated chip run.

    One injector serves one run on one chip; build a fresh injector per
    run so per-core RNG streams restart from their seeds (that is the
    determinism contract).
    """

    COLLECTOR_NAME = "faults.injector"

    def __init__(self, rules):
        if isinstance(rules, str):
            rules = parse_fault_spec(rules)
        self.rules = list(rules)
        self.flip_rules = [
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in (MPB_FLIP, DRAM_FLIP)]
        self.latency_rules = [
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in (MESH_DELAY, MESH_DROP)]
        self.core_rules = [
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in (CORE_STALL, CORE_CRASH)]
        self.counts = {}       # (kind, core) -> injections
        self._rngs = {}        # (rule index, core) -> Random
        self._fired = set()    # one-shot core faults already delivered
        self.chip = None

    @property
    def active(self):
        return bool(self.rules)

    # -- wiring ------------------------------------------------------------

    def attach(self, chip):
        """Install this injector as ``chip.faults`` and publish its
        counters through the chip's metrics registry."""
        self.chip = chip
        chip.faults = self
        chip.metrics.register_collector(
            self.COLLECTOR_NAME, self._collect_metrics,
            self._reset_counts)
        return self

    def detach(self):
        if self.chip is not None:
            if self.chip.faults is self:
                self.chip.faults = None
            self.chip.metrics.unregister_collector(self.COLLECTOR_NAME)
            self.chip = None

    def _collect_metrics(self):
        return [("counter", "fault_injections",
                 {"kind": kind, "core": core}, count)
                for (kind, core), count in sorted(self.counts.items())]

    def _reset_counts(self):
        self.counts.clear()

    def total_injections(self, kind=None):
        return sum(count for (k, _core), count in self.counts.items()
                   if kind is None or k == kind)

    # -- deterministic randomness ------------------------------------------

    def reset_streams(self):
        """Restart every per-(rule, core) stream from its seed while
        keeping one-shot delivery state (``_fired``).  The supervisor
        calls this between restart attempts so the replayed prefix
        reproduces the original run's injection schedule exactly —
        without re-firing a crash that already fired."""
        self._rngs.clear()

    def _rng(self, rule_index, core):
        key = (rule_index, core)
        rng = self._rngs.get(key)
        if rng is None:
            seed = self.rules[rule_index].seed
            rng = self._rngs[key] = random.Random(
                (seed * 1_000_003 + rule_index * 97 + core) & 0xFFFFFFFF)
        return rng

    def _record(self, kind, core, ts, detail):
        key = (kind, core)
        self.counts[key] = self.counts.get(key, 0) + 1
        chip = self.chip
        if chip is not None and chip.events.enabled:
            args = {"kind": kind}
            args.update(detail)
            chip.events.instant(core, ts, "fault_inject", "fault",
                                args, pid=chip.trace_pid)

    # -- hooks --------------------------------------------------------------

    def filter_load(self, interp, addr, value):
        """Interpreter read hook: maybe corrupt a loaded value."""
        chip = interp.chip
        segment = None
        for index, rule in self.flip_rules:
            rng = self._rng(index, interp.core_id)
            if rng.random() >= rule.p:
                continue
            if segment is None:
                segment = chip.address_space.resolve(addr)[0]
            if segment not in _FLIP_SEGMENTS[rule.kind]:
                continue
            flipped = _flip_bits(value, rng, rule.params.get("bit"),
                                 rule.params.get("bits", 1))
            if flipped == value:
                continue
            self._record(rule.kind, interp.core_id, interp.cycles,
                         {"addr": addr, "segment": str(segment)})
            if segment is SegmentKind.MPB:
                chip.mpb.stats.corrupted_reads += 1
            value = flipped
        return value

    def latency_extra(self, core, segment, kind, cost, ts):
        """Chip pricing hook: extra cycles from link faults."""
        extra = 0
        for index, rule in self.latency_rules:
            rng = self._rng(index, core)
            if rng.random() >= rule.p:
                continue
            if rule.kind == MESH_DELAY:
                add = rule.params.get("cycles", DEFAULT_DELAY_CYCLES)
                detail = {"extra_cycles": add, "segment": str(segment)}
            else:  # MESH_DROP: the message is retransmitted end-to-end
                add = cost
                detail = {"retransmit_cycles": add,
                          "segment": str(segment)}
                if self.chip is not None:
                    self.chip.mesh.record_drop()
            extra += add
            self._record(rule.kind, core, ts, detail)
        return extra

    def message_dropped(self, core, ts, seq=None):
        """Message-level drop decision for one RCCE_send transmission.

        Only consulted by the recovery layer's SendRetrier (never on
        an unprotected run, so PR 3 behaviour is untouched); draws
        from the same per-(rule, core) streams as ``latency_extra`` so
        protected runs stay deterministic under one seed."""
        dropped = False
        for index, rule in self.latency_rules:
            if rule.kind != MESH_DROP:
                continue
            rng = self._rng(index, core)
            if rng.random() >= rule.p:
                continue
            dropped = True
            self._record(MESH_DROP, core, ts,
                         {"message": 1, "seq": seq})
            if self.chip is not None:
                self.chip.mesh.record_drop()
        return dropped

    def core_tick(self, interp):
        """Periodic per-core hook (every few hundred interpreter
        steps): deliver scheduled stalls and crashes."""
        for index, rule in self.core_rules:
            victim = rule.params.get("core", 0)
            if victim != interp.core_id:
                continue
            key = (index, interp.core_id)
            if key in self._fired:
                continue
            if interp.cycles < rule.params.get("at", 0):
                continue
            rng = self._rng(index, interp.core_id)
            if rng.random() >= rule.p:
                self._fired.add(key)  # the one chance passed unused
                continue
            self._fired.add(key)
            if rule.kind == CORE_CRASH:
                self._record(CORE_CRASH, interp.core_id, interp.cycles,
                             {"cycle": interp.cycles})
                raise CoreCrashFault(
                    "injected crash on core %d at cycle %d"
                    % (interp.core_id, interp.cycles),
                    core=interp.core_id, cycle=interp.cycles)
            stall = rule.params.get("cycles", DEFAULT_STALL_CYCLES)
            self._record(CORE_STALL, interp.core_id, interp.cycles,
                         {"cycle": interp.cycles, "stall_cycles": stall})
            interp.charge(stall)
