"""Command-line interface: ``python -m repro <command>``.

Commands
--------
translate
    Pthreads C in, RCCE C out (the paper's end product).
analyze
    Print Tables 4.1 / 4.2 and the partition plan for a program.
check
    Translation-time static analysis (docs/static_analysis.md): the
    interval abstract interpreter's run-time-error checks plus the
    static lockset race audit, without simulating anything.
run
    Simulate a program on the SCC model — the Pthreads original on one
    core, the translated RCCE variant on N cores, or both side by side.
bench
    Regenerate a figure of the paper's evaluation.
serve / submit / jobs
    The supervised job service (docs/service.md): a daemon with
    admission control, deadlines, bounded retry, and
    checkpoint-backed preemption; submit jobs and inspect them over
    its Unix socket.
"""

import argparse
import sys

from repro.bench.figures import render_bars
from repro.bench.harness import ExperimentHarness
from repro.cfront.errors import CFrontError
from repro.core.framework import TranslationFramework
from repro.core.reports import format_table, table_4_1, table_4_2
from repro.faults import (
    FaultSpecError,
    HostFaultPlan,
    parse_fault_spec,
)
from repro.obs.export import write_chrome_trace, write_metrics_json
from repro.obs.profile import PipelineProfiler
from repro.obs.tracer import EventTracer
from repro.rcce.api import RCCEAllocationError
from repro.rcce.comm import CommDeadlockError
from repro.recovery import RecoveryOptions, SnapshotError
from repro.sim.interpreter import InterpreterError
from repro.sim.runner import (
    run_pthread_single_core,
    run_rcce,
    run_rcce_supervised,
)
from repro.sim.watchdog import (
    SimulationTimeout,
    Watchdog,
    WatchdogError,
)

# sysexits.h-style exit codes so scripts and CI can tell failure
# classes apart (docs/robustness.md)
EXIT_OK = 0            # success
EXIT_ERROR = 1         # unexpected internal error
EXIT_USAGE = 2         # bad command line (argparse's own code)
EXIT_PARSE = 65        # EX_DATAERR: C parse / translation failure
EXIT_NOINPUT = 66      # EX_NOINPUT: input file missing/unreadable
EXIT_UNAVAILABLE = 69  # EX_UNAVAILABLE: serve daemon unreachable
EXIT_SIM = 70          # EX_SOFTWARE: simulated program failed
EXIT_TIMEOUT = 75      # EX_TEMPFAIL: deadlock / step-budget timeout,
#                        or a backpressure-rejected submission
EXIT_INTERRUPT = 130   # 128 + SIGINT: operator interrupt, unwound


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pthreads-to-RCCE translation and SCC simulation "
        "(DATE 2015 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    translate = sub.add_parser("translate",
                               help="translate Pthreads C to RCCE C")
    translate.add_argument("source", help="input C file ('-' for stdin)")
    translate.add_argument("-o", "--output", default=None,
                           help="output file (default: stdout)")
    _framework_args(translate)

    analyze = sub.add_parser("analyze",
                             help="print the analysis tables, or — "
                             "with --bottlenecks — run the program "
                             "under cycle attribution and report "
                             "where the time goes")
    analyze.add_argument("source", help="input C file ('-' for stdin)")
    analyze.add_argument("--bottlenecks", action="store_true",
                         help="simulate the RCCE program with "
                         "per-cycle attribution and critical-path "
                         "analysis; print the breakdown, the path, "
                         "and mesh/MPB utilization heatmaps")
    analyze.add_argument("--ues", type=int, default=8,
                         help="RCCE cores for --bottlenecks "
                         "(default 8)")
    analyze.add_argument("--engine", choices=["compiled", "tree"],
                         default="compiled",
                         help="interpreter engine for --bottlenecks")
    analyze.add_argument("--json", default=None, metavar="FILE",
                         help="write the attribution + critical-path "
                         "report as JSON (--bottlenecks only)")
    analyze.add_argument("--trace", default=None, metavar="FILE",
                         help="write a Chrome trace annotated with "
                         "attribution counters and the critical path "
                         "(--bottlenecks only)")
    analyze.add_argument("--max-steps", type=int, default=200_000_000,
                         help="per-core step budget for --bottlenecks")
    _framework_args(analyze)

    check = sub.add_parser(
        "check", help="static analysis: interval run-time-error "
        "checks and the lockset race audit "
        "(docs/static_analysis.md)")
    check.add_argument("source", help="input C file ('-' for stdin)")
    check.add_argument("--json", action="store_true",
                       help="machine-readable findings on stdout")
    check.add_argument("--report", default=None, metavar="FILE",
                       help="write the findings (with file/line/"
                       "variable and per-site lockset provenance) "
                       "as JSON")
    check.add_argument("--metrics", default=None, metavar="FILE",
                       help="write the per-check counters as a "
                       "metrics-registry snapshot JSON")
    check.add_argument("--ues", type=int, default=48,
                       help="cores assumed for the stage-5 mutex/"
                       "register mapping (default 48)")
    _framework_args(check)

    run = sub.add_parser("run", help="simulate on the SCC model")
    run.add_argument("source", help="input C file ('-' for stdin)")
    run.add_argument("--ues", type=int, default=8,
                     help="RCCE cores to simulate (default 8)")
    run.add_argument("--mode", choices=["pthread", "rcce", "compare"],
                     default="compare")
    run.add_argument("--stats", action="store_true",
                     help="print chip counters after the RCCE run")
    run.add_argument("--trace", default=None, metavar="FILE",
                     help="write a Chrome trace-event JSON of the "
                     "simulation (load in chrome://tracing / Perfetto)")
    run.add_argument("--metrics", default=None, metavar="FILE",
                     help="write the metrics-registry snapshots as JSON")
    run.add_argument("--engine", choices=["compiled", "tree"],
                     default="compiled",
                     help="interpreter engine: closure-compiled "
                     "(default) or the reference tree-walker")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="shard the RCCE cores across N host worker "
                     "processes with Graphite-style relaxed clock "
                     "sync; cycles and outputs stay byte-identical "
                     "to --jobs 1 (see docs/performance.md)")
    run.add_argument("--quantum", type=int, default=None,
                     metavar="CYCLES",
                     help="simulated cycles a shard may run between "
                     "clock publications (--jobs only; default 50000)")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject deterministic faults, e.g. "
                     "'mpb_flip:p=1e-6,seed=7;mesh_drop:p=1e-4' "
                     "(see docs/robustness.md; forces --engine tree)")
    run.add_argument("--recover", action="store_true",
                     help="enable the recovery layer for the RCCE "
                     "run: ECC scrubbing of flipped reads and "
                     "retried RCCE_send messages "
                     "(see docs/robustness.md)")
    run.add_argument("--max-restarts", type=int, default=0,
                     metavar="N",
                     help="supervise the RCCE run: after a core "
                     "crash, timeout, or uncorrectable ECC error, "
                     "restart from the newest checkpoint up to N "
                     "times")
    run.add_argument("--checkpoint-every", type=int, default=0,
                     metavar="N",
                     help="write a snapshot every N barrier rounds "
                     "(default: every round when --max-restarts is "
                     "set, otherwise off)")
    run.add_argument("--checkpoint", default=None, metavar="FILE",
                     help="snapshot file for --checkpoint-every / "
                     "--max-restarts (default repro.ckpt)")
    run.add_argument("--restore", default=None, metavar="FILE",
                     help="restore a snapshot by verified replay, "
                     "then run to completion")
    run.add_argument("--race", action="store_true",
                     help="audit the run with the dynamic race "
                     "detector and HSM coherence checker (see "
                     "docs/race_detection.md); findings print as "
                     "diagnostics and, with --strict, fail the run")
    run.add_argument("--race-report", default=None, metavar="FILE",
                     help="write the race audit (findings with "
                     "core/pc/variable/epoch provenance) as JSON")
    run.add_argument("--static-check", action="store_true",
                     help="audit the program at translation time "
                     "with the static analysis stage (see "
                     "docs/static_analysis.md); findings print as "
                     "diagnostics and, with --strict, fail the run")
    run.add_argument("--static-report", default=None, metavar="FILE",
                     help="write the static audit (findings with "
                     "file/line/variable provenance) as JSON")
    run.add_argument("--max-steps", type=int, default=200_000_000,
                     help="per-core step budget before the run is "
                     "aborted with a SimulationTimeout")
    run.add_argument("--no-watchdog", action="store_true",
                     help="disable deadlock/livelock detection for "
                     "the RCCE run")
    run.add_argument("--watchdog-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock bound for any single lock or "
                     "barrier wait (default: 30s locks, 600s barriers)")
    run.add_argument("--chaos", default=None, metavar="SPEC",
                     help="inject deterministic host-level faults "
                     "into the --jobs worker processes, e.g. "
                     "'worker_kill:at_tick=3,seed=7;"
                     "ipc_delay:seconds=0.001' (kinds: worker_kill, "
                     "worker_stall, ipc_delay; see "
                     "docs/robustness.md)")
    run.add_argument("--shard-restarts", type=int, default=2,
                     metavar="N",
                     help="respawn a dead or stalled --jobs worker "
                     "up to N times per shard, replaying it to its "
                     "crash point (default 2; 0 disables shard "
                     "supervision)")
    run.add_argument("--heartbeat-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="declare a --jobs worker stalled (and "
                     "respawn it) after this much wall-clock silence "
                     "(default 30s)")
    _framework_args(run)

    bench = sub.add_parser("bench", help="regenerate a paper figure")
    bench.add_argument("figure", choices=["6.1", "6.2", "6.3"])
    bench.add_argument("--ues", type=int, default=32)
    bench.add_argument("--engine", choices=["compiled", "tree"],
                       default="compiled",
                       help="interpreter engine (see `run --engine`)")

    serve = sub.add_parser(
        "serve", help="run (or query) the supervised job daemon "
        "(docs/service.md)")
    serve.add_argument("--state-dir", default=".repro-serve",
                       metavar="DIR",
                       help="socket, queue, checkpoint, and memo "
                       "directory (default .repro-serve)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker-process pool size (default 2)")
    serve.add_argument("--depth", type=int, default=None, metavar="N",
                       help="admission control: max queued jobs "
                       "before submissions are shed (default 64)")
    serve.add_argument("--memory-mb", type=int, default=None,
                       metavar="MB",
                       help="admission control: estimated in-flight "
                       "memory budget (default 512)")
    serve.add_argument("--chaos", default=None, metavar="SPEC",
                       help="deterministic service-level chaos, e.g. "
                       "'job_kill:job=0,attempt=1' (kinds: job_kill, "
                       "job_stall; see docs/service.md)")
    serve.add_argument("--preempt-grace", type=float, default=None,
                       metavar="SECONDS",
                       help="terminate a preempted worker that has "
                       "not checkpointed after this long (default 30)")
    serve.add_argument("--status", action="store_true",
                       help="print a running daemon's metrics "
                       "snapshot and exit")
    serve.add_argument("--json", action="store_true",
                       help="with --status: machine-readable output")
    serve.add_argument("--shutdown", action="store_true",
                       help="ask a running daemon to drain, persist "
                       "its queue, and exit 0")

    submit = sub.add_parser(
        "submit", help="submit a job to the serve daemon")
    submit.add_argument("source", help="input C file ('-' for stdin)")
    submit.add_argument("--state-dir", default=".repro-serve",
                        metavar="DIR", help="the daemon's state dir")
    submit.add_argument("--mode", choices=["rcce", "pthread"],
                        default="rcce",
                        help="simulate the translated RCCE program "
                        "(default) or the pthread original on one "
                        "core")
    submit.add_argument("--ues", type=int, default=8,
                        help="RCCE cores to simulate (default 8)")
    submit.add_argument("--engine", choices=["compiled", "tree"],
                        default="compiled")
    submit.add_argument("--max-steps", type=int, default=200_000_000,
                        help="per-core step budget")
    submit.add_argument("--faults", default=None, metavar="SPEC",
                        help="chip-level fault spec for this job")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority (higher first; "
                        "default 0)")
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline; a job past it is "
                        "killed with JobDeadlineError")
    submit.add_argument("--retries", type=int, default=1, metavar="N",
                        help="retry budget for restartable failures "
                        "(default 1)")
    submit.add_argument("--preemptible", action="store_true",
                        help="let the scheduler preempt this job at "
                        "a barrier-aligned checkpoint for "
                        "higher-priority work (forces --engine tree)")
    submit.add_argument("--checkpoint-every", type=int, default=1,
                        metavar="N", help="checkpoint cadence in "
                        "barrier rounds for --preemptible (default 1)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes; exit 70 "
                        "if it failed")
    submit.add_argument("--json", action="store_true",
                        help="machine-readable output")
    _framework_args(submit)

    jobs = sub.add_parser(
        "jobs", help="list or inspect the serve daemon's jobs")
    jobs.add_argument("--state-dir", default=".repro-serve",
                      metavar="DIR", help="the daemon's state dir")
    jobs.add_argument("--id", default=None, metavar="JOB",
                      help="show one job in full")
    jobs.add_argument("--preempt", default=None, metavar="JOB",
                      help="ask the daemon to preempt a running job")
    jobs.add_argument("--json", action="store_true",
                      help="machine-readable output")

    return parser


def _framework_args(parser):
    parser.add_argument("--policy", default="size",
                        choices=["size", "frequency", "off-chip-only"],
                        help="Stage 4 partition policy")
    parser.add_argument("--capacity", type=int, default=None,
                        help="on-chip shared capacity in bytes")
    parser.add_argument("--fold", action="store_true",
                        help="enable many-to-one thread folding (§7.2)")
    parser.add_argument("--split", action="store_true",
                        help="allow SRAM/DRAM split allocation (§4.4)")
    parser.add_argument("--profile", action="store_true",
                        help="print per-stage pipeline wall times")
    parser.add_argument("--strict", action="store_true",
                        help="fail fast on the first pipeline error "
                        "instead of collecting a diagnostics report")


def _read_source(path):
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _framework(args):
    kwargs = {"partition_policy": args.policy,
              "fold_threads": args.fold,
              "allow_split": getattr(args, "split", False),
              # the CLI degrades gracefully by default: pass failures
              # become a diagnostics report; --strict restores fail-fast
              "strict": getattr(args, "strict", True)}
    if args.capacity is not None:
        kwargs["on_chip_capacity"] = args.capacity
    if getattr(args, "profile", False):
        kwargs["profiler"] = PipelineProfiler()
    return TranslationFramework(**kwargs)


def _report_diagnostics(result, err):
    """Render the pipeline report to ``err``; True when it has errors
    (the caller should stop and exit ``EXIT_PARSE``)."""
    report = result.report
    if len(report):
        err.write(report.render() + "\n")
    return report.has_errors


def cmd_translate(args, out, err):
    source = _read_source(args.source)
    framework = _framework(args)
    result = framework.translate(source)
    if _report_diagnostics(result, err):
        return EXIT_PARSE
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.rcce_source)
        out.write("wrote %s\n" % args.output)
    else:
        out.write(result.rcce_source)
    if framework.profiler is not None:
        # '// ' prefix keeps stdout a valid C translation unit
        out.write(framework.profiler.render("// ") + "\n")
    return EXIT_OK


def cmd_analyze(args, out, err):
    if getattr(args, "bottlenecks", False):
        return _analyze_bottlenecks(args, out, err)
    source = _read_source(args.source)
    framework = _framework(args)
    result = framework.partition(source)
    if _report_diagnostics(result, err):
        return EXIT_PARSE
    if framework.profiler is not None:
        out.write(framework.profiler.render() + "\n\n")
    out.write(format_table(
        table_4_1(result),
        title="Per-variable information (post Stage 3)") + "\n\n")
    out.write(format_table(
        table_4_2(result), title="Sharing status per stage") + "\n\n")
    plan = result.plan
    out.write("Partition plan (%s, capacity %d B):\n"
              % (plan.policy, plan.capacity))
    for placement in sorted(plan.placements.values(),
                            key=lambda p: p.info.name):
        out.write("  %-12s %6d B  -> %s\n"
                  % (placement.info.name, placement.info.mem_size,
                     placement.bank))
    return EXIT_OK


def _analyze_bottlenecks(args, out, err):
    """``repro analyze --bottlenecks``: run the RCCE program with full
    cycle attribution, then report the breakdown, the critical path,
    and the mesh/MPB utilization heatmaps."""
    import json

    from repro.obs.attribution import (
        AttributionEngine,
        annotate_chrome_trace,
    )
    from repro.scc.chip import SCCChip
    from repro.scc.config import Table61Config
    from repro.scc.report import chip_report, render_report

    source = _read_source(args.source)
    translated = None
    if "RCCE_APP" in source:
        from repro.cfront.frontend import parse_program
        unit = parse_program(source)
    else:
        framework = _framework(args)
        translated = framework.translate(source)
        if _report_diagnostics(translated, err):
            return EXIT_PARSE
        unit = translated.unit
    chip = SCCChip(Table61Config())
    # heatmap inputs are opt-in recordings (each costs a lock or a
    # dict bump on the hot path), so only this command enables them
    chip.mesh.enable_traffic_recording()
    chip.mpb.enable_owner_tracking()
    tracer = None
    if getattr(args, "trace", None):
        tracer = EventTracer()
        chip.attach_events(tracer, pid=0,
                           name="rcce x%d cores" % args.ues)
    engine = AttributionEngine()
    result = run_rcce(unit, args.ues, chip.config, chip,
                      max_steps=args.max_steps, engine=args.engine,
                      attribution=engine)
    for diagnostic in result.diagnostics:
        err.write(diagnostic.format() + "\n")
    report = result.attribution
    if translated is not None:
        # surface the profile on the pipeline result too
        translated.context.facts["attribution"] = report
    out.write(report.render() + "\n\n")
    out.write(report.critical_path.render() + "\n\n")
    out.write(render_report(chip_report(chip)) + "\n")
    if getattr(args, "json", None):
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        out.write("attribution report written to %s\n" % args.json)
    if tracer is not None:
        emitted = annotate_chrome_trace(tracer, engine, report)
        write_chrome_trace(tracer, args.trace, chip.config)
        out.write("annotated trace written to %s (%d events, "
                  "%d annotations)\n"
                  % (args.trace, len(tracer), emitted))
    return EXIT_OK


def cmd_check(args, out, err):
    """``repro check``: stages 1-3 plus the static-analysis stage,
    no simulation.  Findings exit ``EXIT_SIM`` under ``--strict``,
    mirroring the dynamic race detector."""
    import json

    source = _read_source(args.source)
    framework = _framework(args)
    framework.num_cores = args.ues
    filename = args.source if args.source != "-" else "<stdin>"
    result = framework.check(source, filename=filename)
    report = result.report
    if report.has_errors:
        err.write(report.render() + "\n")
        return EXIT_PARSE
    static = result.static_report
    # Under --json stdout is a machine-readable payload: everything
    # else (profiler, written-to notices) moves to stderr.
    notice = err if args.json else out
    if args.json:
        out.write(json.dumps(static.as_dict(), indent=2,
                             sort_keys=True) + "\n")
    else:
        out.write(static.render() + "\n")
    if framework.profiler is not None:
        notice.write(framework.profiler.render() + "\n")
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(static.as_dict(), handle, indent=2)
            handle.write("\n")
        notice.write("static report written to %s\n" % args.report)
    if args.metrics:
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        static.register_metrics(registry)
        write_metrics_json({"static": registry.snapshot()},
                           args.metrics)
        notice.write("metrics written to %s\n" % args.metrics)
    if static.has_findings and getattr(args, "strict", False):
        return EXIT_SIM
    return EXIT_OK


def cmd_run(args, out, err):
    from repro.scc.chip import SCCChip
    from repro.scc.config import Table61Config

    source = _read_source(args.source)
    faults = getattr(args, "faults", None)
    if faults:
        parse_fault_spec(faults)  # fail early, before any simulation
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        err.write("repro: --jobs must be a positive worker count "
                  "(got %d)\n" % jobs)
        return EXIT_USAGE
    quantum = getattr(args, "quantum", None)
    if quantum is not None and quantum < 1:
        err.write("repro: --quantum must be a positive cycle count "
                  "(got %d)\n" % quantum)
        return EXIT_USAGE
    chaos = getattr(args, "chaos", None) or None
    if chaos is not None:
        try:
            # host-only validation up front: a chip-level kind in
            # --chaos is a usage error, not a simulation failure
            HostFaultPlan(chaos)
        except FaultSpecError as exc:
            return _fail(err, EXIT_USAGE, "bad --chaos spec", exc)
    shard_restarts = getattr(args, "shard_restarts", 2)
    if shard_restarts < 0:
        err.write("repro: --shard-restarts must be >= 0 (got %d)\n"
                  % shard_restarts)
        return EXIT_USAGE
    heartbeat_timeout = getattr(args, "heartbeat_timeout", None)
    if heartbeat_timeout is not None and heartbeat_timeout <= 0:
        err.write("repro: --heartbeat-timeout must be positive "
                  "(got %g)\n" % heartbeat_timeout)
        return EXIT_USAGE
    recover_on = getattr(args, "recover", False)
    max_restarts = getattr(args, "max_restarts", 0)
    checkpoint_every = getattr(args, "checkpoint_every", 0)
    restore = getattr(args, "restore", None)
    want_checkpoint = checkpoint_every > 0 or max_restarts > 0 \
        or getattr(args, "checkpoint", None) is not None
    race_on = getattr(args, "race", False) \
        or getattr(args, "race_report", None) is not None
    if (bool(faults) or want_checkpoint or restore is not None) \
            and args.engine == "compiled" \
            and getattr(args, "strict", False):
        err.write("repro: --engine compiled cannot honour %s: the "
                  "fault and checkpoint hooks need the reference "
                  "tree engine (verified cycle-identical); rerun "
                  "with --engine tree or drop --strict\n"
                  % ("--faults" if faults else "checkpoint/restore"))
        return EXIT_USAGE
    if jobs > 1 and getattr(args, "strict", False):
        blocker = None
        if faults:
            blocker = "--faults"
        elif recover_on or want_checkpoint or restore is not None:
            blocker = "--recover/--checkpoint/--restore"
        elif race_on:
            blocker = "--race"
        elif getattr(args, "trace", None):
            blocker = "--trace"
        if blocker is not None:
            err.write("repro: --jobs %d cannot honour %s: the "
                      "feature needs the shared-world thread backend "
                      "(verified cycle-identical); rerun without %s "
                      "or drop --strict\n" % (jobs, blocker, blocker))
            return EXIT_USAGE
    recovery = None
    if recover_on or want_checkpoint or restore is not None:
        recovery = RecoveryOptions(
            ecc=recover_on, retry=recover_on,
            checkpoint_path=(getattr(args, "checkpoint", None)
                             or "repro.ckpt")
            if want_checkpoint else None,
            checkpoint_every=checkpoint_every or 1,
            restore=restore)
    watchdog = None
    if args.mode in ("rcce", "compare") and \
            not getattr(args, "no_watchdog", False):
        # the watchdog no longer forces the thread backend: the
        # parallel coordinator maps its lock/barrier timeouts onto
        # the parked-rank and wall-clock supervision bounds
        if getattr(args, "watchdog_timeout", None) is not None:
            watchdog = Watchdog(lock_timeout=args.watchdog_timeout,
                                barrier_timeout=args.watchdog_timeout)
        else:
            watchdog = Watchdog()
    tracer = EventTracer() if getattr(args, "trace", None) else None
    static_report = None
    if getattr(args, "static_check", False) \
            or getattr(args, "static_report", None) is not None:
        checked = _framework(args).check(
            source, filename=args.source if args.source != "-"
            else "<stdin>")
        if _report_diagnostics(checked, err):
            return EXIT_PARSE
        static_report = checked.static_report
        out.write(static_report.render().splitlines()[0] + "\n")
    race_reports = {}
    snapshots = {}
    baseline = None
    if args.mode in ("pthread", "compare"):
        pthread_chip = SCCChip(Table61Config())
        if tracer is not None:
            pthread_chip.attach_events(tracer, pid=0,
                                       name="pthread x1 core")
        baseline = run_pthread_single_core(source, pthread_chip.config,
                                           pthread_chip,
                                           max_steps=args.max_steps,
                                           engine=args.engine,
                                           faults=faults,
                                           race=race_on,
                                           jobs=jobs)
        snapshots["pthread"] = baseline.metrics
        for diagnostic in baseline.diagnostics:
            err.write(diagnostic.format() + "\n")
        if baseline.race is not None:
            race_reports["pthread"] = baseline.race
            out.write(baseline.race.render().splitlines()[0] + "\n")
        out.write("pthread x1 core : %12d cycles  %s\n"
                  % (baseline.cycles,
                     baseline.stdout().strip().splitlines()[:1]))
    if args.mode in ("rcce", "compare"):
        if "RCCE_APP" in source:
            if jobs > 1:
                # the process backend needs the raw source so each
                # worker can parse/compile its own replica
                unit = source
            else:
                from repro.cfront.frontend import parse_program
                unit = parse_program(source)
        else:
            framework = _framework(args)
            result = framework.translate(source)
            if _report_diagnostics(result, err):
                return EXIT_PARSE
            unit = result.rcce_source if jobs > 1 else result.unit
            if framework.profiler is not None:
                out.write(framework.profiler.render() + "\n")
        if max_restarts > 0:
            chips = []

            def chip_factory():
                chip = SCCChip(Table61Config())
                if tracer is not None:
                    chip.attach_events(tracer, pid=1,
                                       name="rcce x%d cores" % args.ues)
                chips.append(chip)
                return chip

            watchdog_factory = None
            if watchdog is not None:
                timeout = getattr(args, "watchdog_timeout", None)

                def watchdog_factory():
                    if timeout is not None:
                        return Watchdog(lock_timeout=timeout,
                                        barrier_timeout=timeout)
                    return Watchdog()

            rcce = run_rcce_supervised(
                unit, args.ues, config=Table61Config(),
                max_steps=args.max_steps, engine=args.engine,
                faults=faults, recovery=recovery,
                max_restarts=max_restarts,
                chip_factory=chip_factory,
                watchdog_factory=watchdog_factory,
                race=race_on, jobs=jobs, quantum=quantum,
                shard_restarts=shard_restarts,
                heartbeat_timeout=heartbeat_timeout)
            chip = chips[-1]
        else:
            chip = SCCChip(Table61Config())
            if tracer is not None:
                chip.attach_events(tracer, pid=1,
                                   name="rcce x%d cores" % args.ues)
            rcce = run_rcce(unit, args.ues, chip.config, chip,
                            max_steps=args.max_steps,
                            engine=args.engine, faults=faults,
                            watchdog=watchdog, recovery=recovery,
                            race=race_on, jobs=jobs, quantum=quantum,
                            chaos=chaos,
                            shard_restarts=shard_restarts,
                            heartbeat_timeout=heartbeat_timeout)
        snapshots["rcce"] = rcce.metrics
        for diagnostic in rcce.diagnostics:
            err.write(diagnostic.format() + "\n")
        if getattr(args, "strict", False) and any(
                "degraded to the thread backend" in d.message
                for d in rcce.diagnostics if d.severity == "warning"):
            # the process backend's restart budget ran out mid-run;
            # the graceful thread-backend rerun succeeded, but under
            # --strict a silent backend swap is a usage failure
            err.write("repro: --strict: --jobs %d degraded to the "
                      "thread backend after exhausting its shard "
                      "restart budget; raise --shard-restarts or "
                      "drop --strict\n" % jobs)
            return EXIT_USAGE
        if rcce.race is not None:
            race_reports["rcce"] = rcce.race
            out.write(rcce.race.render().splitlines()[0] + "\n")
        first = rcce.stdout().strip().splitlines()[:1]
        out.write("rcce    x%d cores: %12d cycles  %s\n"
                  % (args.ues, rcce.cycles, first))
        if baseline is not None:
            out.write("speedup: %.2fx\n" % (baseline.cycles / rcce.cycles))
        if getattr(args, "stats", False):
            from repro.scc.report import chip_report, render_report
            out.write(render_report(chip_report(chip)) + "\n")
    if tracer is not None:
        write_chrome_trace(tracer, args.trace, Table61Config())
        out.write("trace written to %s (%d events)\n"
                  % (args.trace, len(tracer)))
    if getattr(args, "metrics", None):
        write_metrics_json(snapshots, args.metrics)
        out.write("metrics written to %s\n" % args.metrics)
    if getattr(args, "race_report", None) and race_reports:
        import json
        with open(args.race_report, "w") as handle:
            json.dump({mode: report.as_dict()
                       for mode, report in race_reports.items()},
                      handle, indent=2)
            handle.write("\n")
        out.write("race report written to %s\n" % args.race_report)
    if getattr(args, "static_report", None) \
            and static_report is not None:
        import json
        with open(args.static_report, "w") as handle:
            json.dump(static_report.as_dict(), handle, indent=2)
            handle.write("\n")
        out.write("static report written to %s\n" % args.static_report)
    findings = any(report.has_findings
                   for report in race_reports.values()) \
        or (static_report is not None and static_report.has_findings)
    if findings and getattr(args, "strict", False):
        # the soundness audit failed: the translated program can race
        # or read stale cacheable lines on the real chip
        return EXIT_SIM
    return EXIT_OK


def cmd_bench(args, out, err):
    harness = ExperimentHarness(num_ues=args.ues, engine=args.engine)
    if args.figure == "6.1":
        rows = harness.figure_6_1()
        out.write(render_bars(rows, "benchmark", "speedup",
                              title="Figure 6.1") + "\n")
    elif args.figure == "6.2":
        rows = harness.figure_6_2()
        out.write(render_bars(rows, "benchmark", "improvement",
                              title="Figure 6.2") + "\n")
    else:
        rows = harness.figure_6_3()
        out.write(render_bars(rows, "cores", "speedup",
                              title="Figure 6.3") + "\n")
    return EXIT_OK


def cmd_serve(args, out, err):
    from repro.serve.client import ServeClient

    if getattr(args, "status", False):
        client = ServeClient(args.state_dir)
        status = client.status()
        if getattr(args, "json", False):
            import json
            out.write(json.dumps(status, indent=2, sort_keys=True)
                      + "\n")
            return EXIT_OK
        from repro.obs.metrics import render_snapshot_text
        out.write("pool %d | running %d | queued %d\n"
                  % (status["pool_size"], status["running"],
                     status["queued"]))
        text = render_snapshot_text(status["metrics"])
        if text:
            out.write(text + "\n")
        return EXIT_OK
    if getattr(args, "shutdown", False):
        client = ServeClient(args.state_dir)
        client.shutdown()
        out.write("daemon at %s is draining\n" % args.state_dir)
        return EXIT_OK

    from repro.serve.daemon import ServeDaemon

    if args.workers < 1:
        err.write("repro: --workers must be a positive pool size "
                  "(got %d)\n" % args.workers)
        return EXIT_USAGE
    chaos = getattr(args, "chaos", None) or None
    daemon = ServeDaemon(
        args.state_dir, pool_size=args.workers,
        max_depth=getattr(args, "depth", None),
        memory_budget=(args.memory_mb * 1024 * 1024
                       if getattr(args, "memory_mb", None) is not None
                       else None),
        chaos=chaos,
        preempt_grace=getattr(args, "preempt_grace", None),
        log=lambda line: (err.write("repro serve: %s\n" % line),
                          getattr(err, "flush", lambda: None)())[0])
    return daemon.serve_forever()


def cmd_submit(args, out, err):
    import json as json_mod

    from repro.serve.client import ServeClient
    from repro.serve.job import JobSpec

    source = _read_source(args.source)
    if args.faults:
        parse_fault_spec(args.faults)  # fail early, client-side
    spec = JobSpec(mode=args.mode, num_ues=args.ues,
                   engine=args.engine, policy=args.policy,
                   capacity=args.capacity, fold=args.fold,
                   split=getattr(args, "split", False),
                   max_steps=args.max_steps, faults=args.faults)
    client = ServeClient(args.state_dir)
    response = client.submit(
        source, spec=spec, priority=args.priority,
        deadline_seconds=args.deadline, max_retries=args.retries,
        preemptible=args.preemptible,
        checkpoint_every=args.checkpoint_every)
    if not response.get("ok"):
        code = EXIT_TIMEOUT \
            if response.get("error") == "BackpressureError" \
            else EXIT_ERROR
        err.write("repro: submission rejected: %s: %s\n"
                  % (response.get("error", "error"),
                     response.get("message", "")))
        return code
    job_id = response["job_id"]
    if not args.wait:
        if args.json:
            out.write(json_mod.dumps(response) + "\n")
        else:
            out.write("%s submitted%s\n"
                      % (job_id,
                         " (cached)" if response.get("cached")
                         else ""))
        return EXIT_OK
    job = client.wait(job_id)
    if args.json:
        out.write(json_mod.dumps(job, indent=2, sort_keys=True)
                  + "\n")
    elif job["state"] == "done":
        result = job["result"]
        out.write("%s done: %d cycles%s\n"
                  % (job_id, result["cycles"],
                     " (cached)" if result.get("cached") else ""))
        out.write(result["stdout"])
    else:
        outcome = job.get("outcome") or {}
        err.write("repro: job %s failed: %s: %s\n"
                  % (job_id, outcome.get("error", "error"),
                     outcome.get("message", "")))
    return EXIT_OK if job["state"] == "done" else EXIT_SIM


def cmd_jobs(args, out, err):
    import json as json_mod

    from repro.serve.client import ServeClient

    client = ServeClient(args.state_dir)
    if args.preempt:
        response = client.preempt(args.preempt)
        if not response.get("ok"):
            err.write("repro: %s: %s\n"
                      % (response.get("error", "error"),
                         response.get("message", "")))
            return EXIT_ERROR
        out.write("%s asked to preempt\n" % args.preempt)
        return EXIT_OK
    if args.id:
        response = client.job(args.id)
        if not response.get("ok"):
            err.write("repro: %s: %s\n"
                      % (response.get("error", "error"),
                         response.get("message", "")))
            return EXIT_ERROR
        out.write(json_mod.dumps(response["job"], indent=2,
                                 sort_keys=True) + "\n")
        return EXIT_OK
    rows = client.jobs()["jobs"]
    if args.json:
        out.write(json_mod.dumps(rows, indent=2, sort_keys=True)
                  + "\n")
        return EXIT_OK
    if not rows:
        out.write("no jobs\n")
        return EXIT_OK
    for row in rows:
        extra = ""
        if "cycles" in row:
            extra = " %d cycles%s" % (row["cycles"],
                                      " (cached)"
                                      if row.get("cached") else "")
        elif "error" in row:
            extra = " %s" % row["error"]
        out.write("%-6s %-9s prio=%d attempts=%d preemptions=%d%s\n"
                  % (row["job_id"], row["state"], row["priority"],
                     row["attempts"], row["preemptions"], extra))
    return EXIT_OK


COMMANDS = {
    "translate": cmd_translate,
    "analyze": cmd_analyze,
    "check": cmd_check,
    "run": cmd_run,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "jobs": cmd_jobs,
}


def _fail(err, code, kind, exc):
    message = str(exc).strip() or type(exc).__name__
    err.write("repro: %s: %s\n" % (kind, message.splitlines()[0]))
    # multi-line payloads (per-core dumps, deadlock cycles) follow the
    # one-line summary so scripts can still grab line one
    rest = message.splitlines()[1:]
    if rest:
        err.write("\n".join(rest) + "\n")
    return code


def main(argv=None, out=None, err=None):
    from repro.serve.client import DaemonUnreachableError
    from repro.serve.job import BackpressureError, ServeError

    out = out or sys.stdout
    err = err or sys.stderr
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args, out, err)
    except FileNotFoundError as exc:
        return _fail(err, EXIT_NOINPUT,
                     "cannot read input", exc)
    except FaultSpecError as exc:
        return _fail(err, EXIT_USAGE, "bad --faults spec", exc)
    except CFrontError as exc:
        return _fail(err, EXIT_PARSE, "parse error", exc)
    except SnapshotError as exc:
        return _fail(err, EXIT_PARSE, "bad snapshot", exc)
    except DaemonUnreachableError as exc:
        return _fail(err, EXIT_UNAVAILABLE, "daemon unavailable", exc)
    except BackpressureError as exc:
        return _fail(err, EXIT_TIMEOUT, "submission shed", exc)
    except ServeError as exc:
        return _fail(err, EXIT_ERROR, "job service error", exc)
    except (SimulationTimeout, WatchdogError,
            CommDeadlockError) as exc:
        return _fail(err, EXIT_TIMEOUT, "simulation timed out", exc)
    except (InterpreterError, RCCEAllocationError) as exc:
        return _fail(err, EXIT_SIM, "simulated program failed", exc)
    except KeyboardInterrupt as exc:
        # ParallelInterrupted (and a bare Ctrl-C): workers are
        # already terminated and joined; one line, then 128+SIGINT
        return _fail(err, EXIT_INTERRUPT, "interrupted",
                     exc if str(exc) else "interrupted; unwound "
                     "cleanly (no orphaned workers)")


if __name__ == "__main__":
    sys.exit(main())
