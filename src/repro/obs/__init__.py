"""Unified instrumentation: metrics registry, pipeline profiler, and
simulator event tracing.

Three cooperating pieces, all zero-dependency and all no-ops until a
caller opts in:

* :class:`MetricsRegistry` (``repro.obs.metrics``) — labeled counters,
  gauges, and histograms that every chip component, the RCCE runtime,
  and the runners publish into; one ``reset()`` restores a clean slate
  between runs.
* :class:`PipelineProfiler` (``repro.obs.profile``) — wall-time spans
  around the five framework stages and each IR pass, with
  stage-specific statistics.
* :class:`EventTracer` (``repro.obs.tracer``) — a ring buffer of
  timestamped simulator events with a Chrome trace-event exporter
  (loadable in ``chrome://tracing`` / Perfetto, one track per core).
* :class:`AttributionEngine` (``repro.obs.attribution``) — exhaustive
  per-core cycle accounting (every charged cycle lands in exactly one
  class) feeding the critical-path analyzer in
  ``repro.obs.critpath`` and the ``repro analyze`` bottleneck report.

``repro.obs.export`` writes the machine-readable files the CLI's
``--trace`` / ``--metrics`` flags produce.
"""

from repro.obs.attribution import (
    AttributionEngine,
    AttributionReport,
    CLASSES,
    ConservationError,
    annotate_chrome_trace,
)
from repro.obs.critpath import CriticalPathReport, analyze_critical_path

from repro.obs.metrics import (
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_INSTRUMENT,
    render_snapshot_text,
    series_value,
)
from repro.obs.profile import PipelineProfiler, Span
from repro.obs.tracer import EventTracer, NULL_EVENTS
from repro.obs.export import (
    render_metrics_text,
    write_chrome_trace,
    write_metrics_json,
)

__all__ = [
    "AttributionEngine",
    "AttributionReport",
    "CLASSES",
    "ConservationError",
    "CriticalPathReport",
    "analyze_critical_path",
    "annotate_chrome_trace",
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "render_snapshot_text",
    "series_value",
    "PipelineProfiler",
    "Span",
    "EventTracer",
    "NULL_EVENTS",
    "render_metrics_text",
    "write_chrome_trace",
    "write_metrics_json",
]
