"""Critical-path analysis over recorded synchronization edges.

The attribution engine records, per UE rank, every clock-aligning
synchronization event the RCCE runtime performs — barrier entries,
send/recv rendezvous, flag spin-waits and flag writes — which are
exactly the vector-clock edges the race detector emits for the same
primitives.  Walking those edges *backward* from the rank that
finishes last yields the program's critical path: a contiguous chain
of execution segments covering ``[0, makespan]`` where every hop is
the synchronization edge that made the downstream core wait.

By construction the path's segment lengths sum to the measured
makespan (``test_critical_path_length_equals_makespan`` pins this),
and each barrier hop carries the per-rank slack — how many cycles
every other rank sat waiting for the round's blocker.

Single-core pthread runs have no cross-core edges; their critical path
is the trivial single segment on the one core.
"""

from bisect import bisect_right

# blocking event kinds considered when walking a rank's timeline
# backward; "flagw" events only feed the flag-writer index
_BLOCKING = ("barrier", "send", "recv", "wait")


class CriticalPathReport:
    """The critical path, its sync hops, and per-phase bottlenecks."""

    def __init__(self, makespan, segments, hops, phases,
                 complete=True):
        self.makespan = makespan
        self.segments = segments  # [{rank, core, start, end, kind}]
        self.hops = hops          # [{kind, at, from_rank, to_rank, ...}]
        self.phases = phases      # [{round, start, end, blocker_*, ...}]
        self.complete = complete

    @property
    def path_length(self):
        return sum(seg["end"] - seg["start"] for seg in self.segments)

    def bottleneck(self):
        """The (rank, core) whose execution dominates the path."""
        weight = {}
        for seg in self.segments:
            if seg["kind"] == "run":
                key = (seg["rank"], seg["core"])
                weight[key] = weight.get(key, 0) \
                    + seg["end"] - seg["start"]
        if not weight:
            return None
        return max(sorted(weight), key=lambda key: weight[key])

    def as_dict(self):
        return {
            "makespan": self.makespan,
            "path_length": self.path_length,
            "complete": self.complete,
            "bottleneck": self.bottleneck(),
            "segments": list(self.segments),
            "hops": list(self.hops),
            "phases": list(self.phases),
        }

    def render(self, max_segments=24, max_phases=16):
        lines = ["critical path: %d cycles over %d segments, %d sync "
                 "hops" % (self.path_length, len(self.segments),
                           len(self.hops))]
        bottleneck = self.bottleneck()
        if bottleneck is not None:
            lines.append("  bottleneck: rank %s (core %s)"
                         % (bottleneck[0], bottleneck[1]))
        shown = self.segments[:max_segments]
        for seg in shown:
            lines.append("  [%12d .. %12d] rank %-3s core %-3s %s"
                         % (seg["start"], seg["end"], seg["rank"],
                            seg["core"], seg["kind"]))
        if len(self.segments) > len(shown):
            lines.append("  ... %d more segments"
                         % (len(self.segments) - len(shown)))
        if self.phases:
            lines.append("phases (barrier rounds):")
            ranked = sorted(self.phases,
                            key=lambda ph: ph["end"] - ph["start"],
                            reverse=True)[:max_phases]
            for phase in sorted(ranked, key=lambda ph: ph["round"]):
                lines.append(
                    "  round %3d [%d .. %d]: blocker rank %s "
                    "(core %s), dominant %s, max slack %d"
                    % (phase["round"], phase["start"], phase["end"],
                       phase["blocker_rank"], phase["blocker_core"],
                       phase["dominant"], phase["slack_max"]))
            if len(self.phases) > len(ranked):
                lines.append("  ... %d more phases (see JSON output)"
                             % (len(self.phases) - len(ranked)))
        return "\n".join(lines)

    def __repr__(self):
        return ("CriticalPathReport(makespan=%d, segments=%d, "
                "hops=%d, phases=%d)"
                % (self.makespan, len(self.segments), len(self.hops),
                   len(self.phases)))


def _segment(rank, core, start, end, kind):
    return {"rank": rank, "core": core, "start": start, "end": end,
            "kind": kind}


def _phase_dominant(current, previous, interval):
    """Dominant cycle class of one phase on the blocker core, from
    the barrier-entry snapshot delta.  ``barrier_wait`` is excluded
    (it accrued before the phase started) and the unattributed
    remainder competes as ``compute``."""
    deltas = {}
    for cls, cycles in current.items():
        if cls.startswith("_") or cls == "barrier_wait":
            continue
        delta = cycles - previous.get(cls, 0)
        if delta > 0:
            deltas[cls] = delta
    attributed = sum(deltas.values())
    compute = interval - attributed
    if compute > deltas.get("compute", 0):
        deltas["compute"] = compute
    if not deltas:
        return "compute"
    return max(sorted(deltas), key=lambda cls: deltas[cls])


def analyze_critical_path(events_by_rank, per_core_cycles,
                          core_of=None):
    """Compute the critical path for a finished run.

    ``events_by_rank`` is the attribution engine's recorded sync-event
    map; ``per_core_cycles`` the final per-core cycle totals;
    ``core_of`` the rank -> core placement (``None`` for single-core
    runs).  Returns a :class:`CriticalPathReport` or ``None`` when
    there is nothing to analyze.
    """
    if not per_core_cycles:
        return None
    makespan = max(per_core_cycles.values())
    have_events = core_of is not None and any(
        events_by_rank.get(rank) for rank in range(len(core_of)))
    if not have_events:
        core = min(core for core, cycles in per_core_cycles.items()
                   if cycles == makespan)
        segments = [_segment(0, core, 0, makespan, "run")]
        return CriticalPathReport(makespan, segments, [], [])

    num_ues = len(core_of)
    ranks = list(range(num_ues))

    # -- index the event streams ------------------------------------------
    blocking = {}    # rank -> [(end_clock, enriched event)]
    ends = {}        # rank -> [end_clock] (bisect key)
    barriers = {}    # rank -> [(entry, aligned, snapshot)]
    flag_writes = {} # flag -> {clock: rank}
    for rank in ranks:
        events = events_by_rank.get(rank, ())
        rows = []
        rounds = []
        for event in events:
            kind = event[0]
            if kind == "barrier":
                _, entry, aligned, snapshot = event
                rows.append((aligned, ("barrier", len(rounds), entry,
                                       aligned)))
                rounds.append((entry, aligned, snapshot))
            elif kind == "send":
                _, peer, entry, posted, done = event
                rows.append((done, ("send", peer, entry, posted,
                                    done)))
            elif kind == "recv":
                _, peer, entry, avail, done = event
                rows.append((done, ("recv", peer, entry, avail,
                                    done)))
            elif kind == "wait":
                _, flag_id, entry, done = event
                rows.append((done, ("wait", flag_id, entry, done)))
            elif kind == "flagw":
                _, flag_id, clock = event
                flag_writes.setdefault(flag_id, {})[clock] = rank
        blocking[rank] = rows
        ends[rank] = [row[0] for row in rows]
        barriers[rank] = rounds

    # -- barrier phases ----------------------------------------------------
    num_rounds = min(len(barriers[rank]) for rank in ranks)
    phases = []
    round_info = []  # (entries {rank: entry}, aligned, max_entry)
    for k in range(num_rounds):
        entries = {rank: barriers[rank][k][0] for rank in ranks}
        aligned = max(barriers[rank][k][1] for rank in ranks)
        max_entry = max(entries.values())
        round_info.append((entries, aligned, max_entry))
        blocker = min(rank for rank in ranks
                      if entries[rank] == max_entry)
        start = round_info[k - 1][1] if k else 0
        slacks = [max_entry - entry for entry in entries.values()]
        snapshot = barriers[blocker][k][2]
        previous = barriers[blocker][k - 1][2] if k else {}
        interval = entries[blocker] - start
        phases.append({
            "round": k,
            "start": start,
            "end": aligned,
            "blocker_rank": blocker,
            "blocker_core": core_of[blocker],
            "dominant": _phase_dominant(snapshot, previous,
                                        max(interval, 0)),
            "slack_max": max(slacks),
            "slack_total": sum(slacks),
            "slack": {str(rank): max_entry - entry
                      for rank, entry in entries.items()},
        })

    # -- backward walk -----------------------------------------------------
    final = {rank: per_core_cycles.get(core_of[rank], 0)
             for rank in ranks}
    rank = min(r for r in ranks
               if final[r] == max(final.values()))
    t = makespan
    segments = []
    hops = []
    guard = 4 * sum(len(rows) for rows in blocking.values()) + 64
    while t > 0 and guard > 0:
        guard -= 1
        rows = blocking[rank]
        idx = bisect_right(ends[rank], t) - 1
        if idx < 0:
            segments.append(_segment(rank, core_of[rank], 0, t,
                                     "run"))
            t = 0
            break
        end, event = rows[idx]
        if end < t:
            segments.append(_segment(rank, core_of[rank], end, t,
                                     "run"))
            t = end
        kind = event[0]
        if kind == "barrier":
            _, k, entry, aligned = event
            if k >= num_rounds:
                t = entry
                continue
            entries, _, max_entry = round_info[k]
            blocker = min(r for r in ranks
                          if entries[r] == max_entry)
            if aligned > max_entry:
                segments.append(_segment(rank, core_of[rank],
                                         max_entry, aligned,
                                         "barrier"))
            hops.append({"kind": "barrier", "round": k, "at": aligned,
                         "from_rank": rank, "to_rank": blocker,
                         "slack_max": max_entry
                         - min(entries.values())})
            rank = blocker
            t = max_entry
        elif kind == "recv":
            _, peer, entry, avail, done = event
            if done > avail:
                segments.append(_segment(rank, core_of[rank], avail,
                                         done, "transfer"))
            if avail > entry and peer in blocking:
                hops.append({"kind": "recv", "at": avail,
                             "from_rank": rank, "to_rank": peer,
                             "wait": avail - entry})
                rank = peer
                t = avail
            else:
                t = entry
        elif kind == "send":
            _, peer, entry, posted, done = event
            if done > posted and peer in blocking:
                hops.append({"kind": "send", "at": done,
                             "from_rank": rank, "to_rank": peer,
                             "wait": done - posted})
                rank = peer
                # the peer's matching recv completes at this clock
            else:
                t = entry
        elif kind == "wait":
            _, flag_id, entry, done = event
            writer = flag_writes.get(flag_id, {}).get(done)
            if done > entry and writer is not None \
                    and writer != rank:
                hops.append({"kind": "flag", "flag": flag_id,
                             "at": done, "from_rank": rank,
                             "to_rank": writer,
                             "wait": done - entry})
                rank = writer
            else:
                t = entry

    segments.reverse()
    complete = guard > 0 and _contiguous(segments, makespan)
    return CriticalPathReport(makespan, segments, hops, phases,
                              complete=complete)


def _contiguous(segments, makespan):
    clock = 0
    for seg in segments:
        if seg["start"] != clock or seg["end"] < seg["start"]:
            return False
        clock = seg["end"]
    return clock == makespan
