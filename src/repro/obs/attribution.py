"""Exhaustive per-core cycle attribution.

The paper's whole argument is about *where cycles go* on a hybrid
shared memory chip — cacheable private traffic vs. uncached shared
DRAM vs. on-die MPB message passing — so the simulator must be able to
say, for every simulated cycle, which component charged it.  The
:class:`AttributionEngine` classifies every charged cycle into one of
:data:`CLASSES`:

==================  =======================================================
class               charged by
==================  =======================================================
``compute``         the residual: OP_COSTS arithmetic, call overhead,
                    printf/math/alloc flat costs, RCCE setup costs
``l1_hit``          private/MPBT L1 hits (``l1_hit_cycles`` each)
``l2_hit``          private L2 hits
``dram_private``    private L2-miss DRAM latency (base + queueing)
``dram_shared``     uncached shared DRAM latency (base + queueing +
                    the uncached-bypass penalty)
``mpb``             MPB SRAM round trips and pipelined bulk words
``mesh_hop``        the ``hops * mesh_cycles_per_hop`` part of any
                    DRAM, MPB, or message route
``barrier_wait``    clock alignment at RCCE barriers (including the
                    collectives' internal barrier)
``lock_spin``       test-and-set register round trips and pthread
                    mutex lock/unlock costs
``comm_wait``       send/recv rendezvous stalls and flag spin waits
``block_copy``      libc memcpy/memset/strcpy bulk word charges and
                    the put/get non-MPB word fallback
``sched_overhead``  pthread create/join and single-core context-switch
                    overhead
``ecc_scrub``       ECC correction write-backs (repro.recovery.ecc)
``retry_backoff``   dropped-send retransmissions and backoff
                    (repro.recovery.retry)
``fault_latency``   injected extra access latency (repro.faults)
==================  =======================================================

``compute`` is defined as the residual ``total - sum(everything
else)``, and the **conservation invariant** is that this residual is
never negative: every explicitly attributed cycle was really charged,
exactly once, so per-core attributed cycles sum *exactly* to the
core's total.  :meth:`AttributionEngine.report` raises
:class:`ConservationError` on any violation.

The engine follows the same contract as ``repro.faults`` and
``repro.race``: it attaches as ``chip.attribution`` (default ``None``)
and every hot-path hook is a single ``is not None`` probe — cycles,
output, traces, and metrics are byte-identical with the engine absent.
The innermost hooks that remain (the shared-DRAM fast-path closure,
the MPB write-probe) bake a *cell* — a one-element list — so an
enabled run pays one list add, not a method call.  Constant-cost
classes and counts are not tracked on the hot path at all: L1/L2 hit
cycles are derived from the caches' own hit counters (every hit costs
a constant) and memory-op totals from the chip's per-core access
counters, both of which the two engines maintain identically anyway.

Synchronization events (barrier entries, send/recv rendezvous, flag
waits and writes) are recorded per rank for the critical-path analyzer
(:mod:`repro.obs.critpath`), which replays them through the same
vector-clock edge semantics the race detector uses.
"""

from repro.race.vectorclock import VectorClock

CLASSES = (
    "compute",
    "l1_hit",
    "l2_hit",
    "dram_private",
    "dram_shared",
    "mpb",
    "mesh_hop",
    "barrier_wait",
    "lock_spin",
    "comm_wait",
    "block_copy",
    "sched_overhead",
    "ecc_scrub",
    "retry_backoff",
    "fault_latency",
)


class ConservationError(Exception):
    """Attributed cycles exceeded a core's total — something was
    double-counted (or attributed without being charged)."""


class AttributionEngine:
    """One engine serves one run on one chip (like RaceDetector).

    Cycle cells are keyed ``(core, class)`` and each is only ever
    incremented by the host thread simulating that core, so the hot
    path needs no lock; cross-rank data (the sync-event lists) is
    likewise single-writer per rank.
    """

    COLLECTOR_NAME = "obs.attribution"

    def __init__(self):
        self.chip = None
        self._cells = {}     # (core, class) -> [cycles]
        self._ops = {}       # core -> memory op count (detach snapshot)
        self._probes = {}    # core -> [uncharged L1 write-probe hits]
        self._l1_hit_cycles = 0   # captured at attach
        self._l2_hit_cycles = 0
        self._events = {}    # rank -> [sync event tuples]
        self.core_of = None  # rank -> core id (bound by the runner)

    # -- wiring ------------------------------------------------------------

    def attach(self, chip):
        """Install this engine as ``chip.attribution`` (and on the
        MPB, whose cost methods know the hop split), publish its
        counters, and invalidate the per-site fast-path closures so
        they rebuild with the attribution cells baked in."""
        self.chip = chip
        self._l1_hit_cycles = chip.config.l1_hit_cycles
        self._l2_hit_cycles = chip.config.l2_hit_cycles
        chip.attribution = self
        chip.mpb.attribution = self
        chip.mpb._attr_cells.clear()
        chip.metrics.register_collector(
            self.COLLECTOR_NAME, self._collect_metrics, self._reset)
        chip._bump_mem_epoch()
        return self

    def detach(self):
        if self.chip is not None:
            self._ops = self._mem_ops()
            # fold the cache-hit classes (derived live from the chip's
            # hit counters while attached) into the cells so reports
            # built after detach still see them
            for core in range(len(self.chip.cores)):
                for cls, cycles in self._derived(core).items():
                    if cycles:
                        self.cell(core, cls)[0] += cycles
            if self.chip.attribution is self:
                self.chip.attribution = None
            if self.chip.mpb.attribution is self:
                self.chip.mpb.attribution = None
                self.chip.mpb._attr_cells.clear()
            self.chip.metrics.unregister_collector(self.COLLECTOR_NAME)
            self.chip._bump_mem_epoch()
            self.chip = None

    def bind_ranks(self, core_map):
        """Record the rank -> core mapping for reports."""
        self.core_of = list(core_map)

    def _collect_metrics(self):
        samples = []
        for core in self._active_cores():
            classes = self._explicit(core)
            for cls in CLASSES:
                cycles = classes.get(cls, 0)
                if cycles:
                    samples.append(("counter", "attr_cycles",
                                    {"core": core, "class": cls},
                                    cycles))
        for core, count in sorted(self._mem_ops().items()):
            samples.append(("counter", "attr_mem_ops",
                            {"core": core}, count))
        return samples

    def _active_cores(self):
        cores = {core for core, _ in self._cells}
        if self.chip is not None:
            for core, state in enumerate(self.chip.cores):
                if state.l1.stats.hits or state.l2.stats.hits:
                    cores.add(core)
        return sorted(cores)

    def _reset(self):
        for cell in self._cells.values():
            cell[0] = 0
        for cell in self._probes.values():
            cell[0] = 0
        self._ops.clear()
        self._events.clear()

    def _derived(self, core):
        """Cycle classes derived from the chip's own counters rather
        than hot-path hooks: every L1/L2 hit costs a constant, so the
        hit classes are just ``hits x hit_cycles`` — minus the MPB
        write-through probe hits, which fill lines without charging
        L1 cycles."""
        if self.chip is None:
            return {}
        state = self.chip.cores[core]
        probe = self._probes.get(core)
        hits = state.l1.stats.hits - (probe[0] if probe else 0)
        return {"l1_hit": hits * self._l1_hit_cycles,
                "l2_hit": state.l2.stats.hits * self._l2_hit_cycles}

    def _explicit(self, core):
        """Every explicitly attributed class for ``core``: live cells
        plus the derived cache-hit classes."""
        classes = {}
        for cls in CLASSES:
            cell = self._cells.get((core, cls))
            if cell is not None and cell[0]:
                classes[cls] = cell[0]
        for cls, cycles in self._derived(core).items():
            if cycles:
                classes[cls] = classes.get(cls, 0) + cycles
        return classes

    def _mem_ops(self):
        """Per-core memory-operation totals.  These are *not* counted
        on the hot path: both engines bump the chip's per-core access
        counters identically already, so the engine reads them while
        attached and snapshots them on detach."""
        if self.chip is None:
            return dict(self._ops)
        ops = {}
        for core, state in enumerate(self.chip.cores):
            total = sum(state.accesses.values())
            if total:
                ops[core] = total
        return ops

    # -- accumulation ------------------------------------------------------

    def cell(self, core, cls):
        """The mutable one-element cycle accumulator for
        ``(core, cls)`` — hot paths bake this and do ``cell[0] += n``."""
        key = (core, cls)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = [0]
        return cell

    def add(self, core, cls, cycles):
        """Attribute ``cycles`` (charged elsewhere) to one class."""
        if cycles:
            self.cell(core, cls)[0] += cycles

    def probe_cell(self, core):
        """Counter for L1 hits that charged no L1 cycles (the MPB
        write-through probe); subtracted by :meth:`_derived`."""
        cell = self._probes.get(core)
        if cell is None:
            cell = self._probes[core] = [0]
        return cell

    # -- synchronization events (critical-path feed) -----------------------

    def rank_events(self, rank):
        events = self._events.get(rank)
        if events is None:
            events = self._events[rank] = []
        return events

    def core_snapshot(self, core):
        """Cheap copy of one core's attributed cycles (plus cache hit
        counters), taken by that core's own thread at a barrier entry
        so phase-level deltas can be computed later."""
        snap = self._explicit(core)
        chip = self.chip
        if chip is not None:
            state = chip.cores[core]
            ops = sum(state.accesses.values())
            if ops:
                snap["_ops"] = ops
            snap["_l1"] = state.l1.stats.snapshot()
            snap["_l2"] = state.l2.stats.snapshot()
        return snap

    def barrier_event(self, rank, entry, aligned, snapshot):
        """``snapshot`` is the rank's :meth:`core_snapshot`, taken at
        ``entry`` (before the wait was attributed)."""
        self.rank_events(rank).append(
            ("barrier", entry, aligned, snapshot))

    def send_event(self, rank, peer, entry, posted, done):
        """``posted`` is the sender's clock when the message hit the
        fabric (entry + retries + transfer); ``done - posted`` is the
        rendezvous stall."""
        self.rank_events(rank).append(("send", peer, entry, posted,
                                       done))

    def recv_event(self, rank, peer, entry, avail, done):
        """``avail`` is when the payload was available
        (``max(entry, sender_clock)``); ``done - avail`` is the
        transfer itself."""
        self.rank_events(rank).append(("recv", peer, entry, avail,
                                       done))

    def wait_event(self, rank, flag_id, entry, done):
        self.rank_events(rank).append(("wait", flag_id, entry, done))

    def flag_write_event(self, rank, flag_id, clock):
        self.rank_events(rank).append(("flagw", flag_id, clock))

    # -- reporting ---------------------------------------------------------

    def breakdown(self, per_core_cycles):
        """Per-core class breakdown with ``compute`` as the residual;
        raises :class:`ConservationError` if explicit attributions
        exceed any core's total (the conservation invariant)."""
        result = {}
        for core, total in per_core_cycles.items():
            classes = self._explicit(core)
            attributed = sum(classes.values())
            if attributed > total:
                raise ConservationError(
                    "core %d: attributed %d cycles > total %d (%r)"
                    % (core, attributed, total, classes))
            classes["compute"] = total - attributed
            result[core] = classes
        return result

    def report(self, per_core_cycles, core_of=None):
        """Build the :class:`AttributionReport` for a finished run
        (including the critical-path analysis when sync events were
        recorded)."""
        from repro.obs.critpath import analyze_critical_path
        if core_of is None:
            core_of = self.core_of
        breakdown = self.breakdown(per_core_cycles)
        mem_ops = self._mem_ops()
        critical_path = analyze_critical_path(
            self._events, per_core_cycles, core_of)
        return AttributionReport(per_core_cycles, breakdown, mem_ops,
                                 critical_path)

    def replay_vector_clocks(self):
        """Re-derive each rank's vector clock from the recorded sync
        edges — the same edge semantics the race detector emits
        (barrier join-all, send/recv rendezvous, flag write/sync) —
        and return ``{rank: VectorClock}``.  Used by the critical-path
        tests to cross-check that the path respects happens-before."""
        vcs = {rank: VectorClock() for rank in self._events}
        for rank, vc in vcs.items():
            vc.tick(rank)
        # barrier rounds join every participant's clock
        rounds = {}
        for rank, events in self._events.items():
            index = 0
            for event in events:
                if event[0] == "barrier":
                    rounds.setdefault(index, []).append(rank)
                    index += 1
        for _, participants in sorted(rounds.items()):
            merged = VectorClock()
            for rank in participants:
                merged.join(vcs[rank])
            for rank in participants:
                vcs[rank].join(merged)
                vcs[rank].tick(rank)
        return vcs


class AttributionReport:
    """Where every cycle of a finished run went."""

    def __init__(self, per_core_cycles, per_core, mem_ops,
                 critical_path=None):
        self.per_core_cycles = dict(per_core_cycles)
        self.per_core = per_core          # core -> {class: cycles}
        self.mem_ops = mem_ops            # core -> load/store count
        self.critical_path = critical_path

    @property
    def makespan(self):
        return max(self.per_core_cycles.values()) \
            if self.per_core_cycles else 0

    def totals(self):
        """Class totals summed over every core."""
        totals = {}
        for classes in self.per_core.values():
            for cls, cycles in classes.items():
                totals[cls] = totals.get(cls, 0) + cycles
        return totals

    def dominant_class(self, core=None):
        classes = self.totals() if core is None \
            else self.per_core.get(core, {})
        if not classes:
            return None
        return max(sorted(classes), key=lambda cls: classes[cls])

    def as_dict(self):
        return {
            "makespan": self.makespan,
            "per_core_cycles": {str(core): cycles for core, cycles
                                in sorted(self.per_core_cycles.items())},
            "per_core": {str(core): dict(classes) for core, classes
                         in sorted(self.per_core.items())},
            "mem_ops": {str(core): count for core, count
                        in sorted(self.mem_ops.items())},
            "totals": self.totals(),
            "critical_path": self.critical_path.as_dict()
            if self.critical_path is not None else None,
        }

    def render(self):
        """Plain-text attribution table (class totals plus a per-core
        summary line)."""
        lines = ["cycle attribution:"]
        totals = self.totals()
        grand = sum(totals.values()) or 1
        lines.append("  %-14s %14s %7s" % ("class", "cycles", "share"))
        for cls in CLASSES:
            cycles = totals.get(cls, 0)
            if not cycles:
                continue
            lines.append("  %-14s %14d %6.1f%%"
                         % (cls, cycles, 100.0 * cycles / grand))
        lines.append("  makespan: %d cycles" % self.makespan)
        lines.append("per-core:")
        for core in sorted(self.per_core):
            classes = self.per_core[core]
            top = sorted(classes.items(),
                         key=lambda item: (-item[1], item[0]))[:3]
            summary = ", ".join(
                "%s %.0f%%" % (cls,
                               100.0 * cycles
                               / max(self.per_core_cycles[core], 1))
                for cls, cycles in top if cycles)
            lines.append("  core %2d: %12d cycles  [%s]"
                         % (core, self.per_core_cycles[core], summary))
        return "\n".join(lines)

    def __repr__(self):
        return "AttributionReport(makespan=%d, cores=%d)" % (
            self.makespan, len(self.per_core))


def annotate_chrome_trace(tracer, engine, report, pid=0):
    """Append attribution annotations to an event trace: one counter
    track per core sampled at each barrier entry (stacked cycle
    classes), and the critical path as spans on the cores it crosses."""
    emitted = 0
    for rank, events in sorted(engine._events.items()):
        core = engine.core_of[rank] if engine.core_of is not None \
            else rank
        for event in events:
            if event[0] != "barrier":
                continue
            _, entry, _, snapshot = event
            values = {cls: cycles for cls, cycles in snapshot.items()
                      if not cls.startswith("_")}
            if values:
                tracer.counter(core, entry,
                               "attribution core %d" % core, values,
                               pid=pid)
                emitted += 1
    critical_path = report.critical_path
    if critical_path is not None:
        for segment in critical_path.segments:
            if segment["end"] > segment["start"]:
                tracer.complete(segment["core"], segment["start"],
                                segment["end"] - segment["start"],
                                "critical_path", "critpath",
                                {"kind": segment["kind"],
                                 "rank": segment["rank"]}, pid=pid)
                emitted += 1
    return emitted
