"""File exporters: Chrome trace JSON, metrics JSON, metrics text.

Small helpers shared by the CLI and the example scripts so every
capture path produces the same file shapes:

* ``write_chrome_trace(tracer, path, config)`` — a
  ``chrome://tracing`` / Perfetto loadable trace, one track per core;
* ``write_metrics_json(snapshots, path)`` — one or many registry
  snapshots as a JSON document;
* ``render_metrics_text(snapshot)`` — the plain-text dump.
"""

import json


def write_chrome_trace(tracer, path, config=None):
    """Write ``tracer`` as a Chrome trace-event file.  ``config``
    supplies the core frequency so trace microseconds equal simulated
    time; defaults to the SCC's 800 MHz."""
    cycles_per_us = float(config.core_freq_mhz) if config is not None \
        else 800.0
    return tracer.write_chrome(path, cycles_per_us)


def write_metrics_json(snapshots, path, indent=2):
    """Write one snapshot (or a dict of named snapshots) to ``path``."""
    with open(path, "w") as handle:
        json.dump(snapshots, handle, indent=indent, sort_keys=True)
    return path


def render_metrics_text(snapshot):
    """Flatten one registry snapshot to ``name{labels} value`` lines."""
    lines = []
    for section in ("counters", "gauges"):
        for name in sorted(snapshot.get(section, {})):
            for row in snapshot[section][name]:
                lines.append("%s%s %s" % (
                    name, _labels(row["labels"]), row["value"]))
    for name in sorted(snapshot.get("histograms", {})):
        for row in snapshot["histograms"][name]:
            summary = row["summary"]
            lines.append("%s%s count=%d sum=%s p50=%s p99=%s" % (
                name, _labels(row["labels"]), summary["count"],
                summary["sum"], summary["p50"], summary["p99"]))
    return "\n".join(lines)


def _labels(labels):
    if not labels:
        return ""
    return "{%s}" % ",".join("%s=%s" % (key, labels[key])
                             for key in sorted(labels))
