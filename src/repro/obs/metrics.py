"""The metrics registry: counters, gauges, and histograms with labels.

Every subsystem of the simulator publishes into one
:class:`MetricsRegistry` instead of scattering ad-hoc private counters:
the chip registers a *collector* for its component statistics (caches,
memory controllers, MPB, mesh link traffic, power), the RCCE world
registers one for synchronization and communication counts, and the
runners register one for interpreter progress.  Low-frequency events
(allocations, spills) use direct instruments.

Design constraints, in order:

* **near-zero overhead on the hot path** — components keep their cheap
  ``__slots__`` accumulator objects; the registry pulls from them only
  at snapshot time via collectors, so pricing a memory access costs the
  same whether or not anyone is watching;
* **one reset** — :meth:`MetricsRegistry.reset` zeroes every direct
  instrument *and* invokes every collector's reset hook, so a reused
  chip does not bleed statistics between runs;
* **machine-readable exports** — :meth:`MetricsRegistry.snapshot` is a
  plain JSON-safe dict, :meth:`render_text` a one-line-per-series text
  dump.

Instruments are deliberately not locked: increments race benignly under
the GIL exactly like the pre-existing component counters, and metrics
tolerate last-writer-wins noise.
"""

import json
import math
import threading

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

# Histograms keep at most this many raw samples (a ring: newer samples
# overwrite the oldest) so a long run cannot grow without bound.
HISTOGRAM_CAPACITY = 8192


class MetricsError(Exception):
    """Inconsistent registry use (name reused with a different kind or
    label set)."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = COUNTER

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0


class Gauge:
    """A point-in-time value that can go up and down."""

    __slots__ = ("value",)
    kind = GAUGE

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount

    def reset(self):
        self.value = 0


class Histogram:
    """A distribution: exact count/sum/min/max plus percentiles over a
    bounded ring of raw samples."""

    __slots__ = ("count", "total", "min", "max", "samples", "_next")
    kind = HISTOGRAM

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.samples = []
        self._next = 0

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < HISTOGRAM_CAPACITY:
            self.samples.append(value)
        else:
            self.samples[self._next] = value
            self._next = (self._next + 1) % HISTOGRAM_CAPACITY

    def percentile(self, fraction):
        """The ``fraction`` (0..1) percentile over the retained
        samples (nearest-rank: the smallest sample with at least
        ``fraction`` of the data at or below it)."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = math.ceil(fraction * len(ordered)) - 1
        return ordered[min(max(rank, 0), len(ordered) - 1)]

    def summary(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else None,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def reset(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.samples = []
        self._next = 0


class _NullInstrument:
    """Shared no-op instrument returned by a disabled registry."""

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def reset(self):
        pass

    def labels(self, **_labels):
        return self


NULL_INSTRUMENT = _NullInstrument()


class Family:
    """All series of one metric name: either a single unlabeled
    instrument or one child instrument per label-value combination."""

    def __init__(self, name, kind, help_text="", label_names=()):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        self._factory = {COUNTER: Counter, GAUGE: Gauge,
                         HISTOGRAM: Histogram}[kind]
        self._children = {}
        self._lock = threading.Lock()
        if not self.label_names:
            self._children[()] = self._factory()

    def labels(self, **labels):
        """The child instrument for one label-value combination.
        Callers on hot paths should cache the returned child."""
        key = tuple(labels.get(name) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            # validate only on the slow path: hot callers cache children
            if set(labels) != set(self.label_names):
                raise MetricsError(
                    "metric %r takes labels %r, got %r"
                    % (self.name, self.label_names, tuple(labels)))
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._factory()
        return child

    # unlabeled families act as their own single instrument
    def inc(self, amount=1):
        self._children[()].inc(amount)

    def dec(self, amount=1):
        self._children[()].dec(amount)

    def set(self, value):
        self._children[()].set(value)

    def observe(self, value):
        self._children[()].observe(value)

    def summary(self):
        return self._children[()].summary()

    def percentile(self, fraction):
        return self._children[()].percentile(fraction)

    @property
    def value(self):
        return self._children[()].value

    def series(self):
        """[(labels_dict, instrument)] for every child, sorted."""
        with self._lock:
            items = sorted(self._children.items(),
                           key=lambda item: tuple(map(str, item[0])))
        return [(dict(zip(self.label_names, key)), child)
                for key, child in items]

    def reset(self):
        with self._lock:
            for child in self._children.values():
                child.reset()


class MetricsRegistry:
    """The single place every subsystem publishes measurements.

    Two publishing styles:

    * **direct instruments** — ``registry.counter("x").inc()`` — for
      low-frequency events;
    * **collectors** — ``registry.register_collector(name, collect,
      reset)`` — for components that already keep cheap private
      accumulators; ``collect()`` returns ``(kind, name, labels,
      value)`` samples and is only called at snapshot time.

    A registry constructed with ``enabled=False`` hands out a shared
    no-op instrument and snapshots empty: the disabled mode is a true
    no-op, verified by ``benchmarks/bench_obs_overhead.py``.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self._families = {}
        self._collectors = {}
        self._lock = threading.Lock()

    # -- instrument creation ----------------------------------------------------

    def counter(self, name, help_text="", labels=()):
        return self._family(name, COUNTER, help_text, labels)

    def gauge(self, name, help_text="", labels=()):
        return self._family(name, GAUGE, help_text, labels)

    def histogram(self, name, help_text="", labels=()):
        return self._family(name, HISTOGRAM, help_text, labels)

    def _family(self, name, kind, help_text, labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(name, kind, help_text, labels)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise MetricsError(
                "metric %r already registered as a %s"
                % (name, family.kind))
        if family.label_names != tuple(labels):
            raise MetricsError(
                "metric %r already registered with labels %r"
                % (name, family.label_names))
        return family

    # -- collectors -------------------------------------------------------------

    def register_collector(self, name, collect, reset=None):
        """Register (or replace) a pull-style source.  ``collect()``
        yields ``(kind, metric_name, labels_dict, value)`` samples;
        ``reset()``, when given, zeroes the underlying accumulators."""
        if not self.enabled:
            return
        with self._lock:
            self._collectors[name] = (collect, reset)

    def unregister_collector(self, name):
        with self._lock:
            self._collectors.pop(name, None)

    # -- lifecycle --------------------------------------------------------------

    def reset(self):
        """Zero every direct instrument and every collector's source —
        the counter-reset hygiene hook the runners call between runs."""
        if not self.enabled:
            return
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors.values())
        for family in families:
            family.reset()
        for _collect, reset in collectors:
            if reset is not None:
                reset()

    # -- exports ----------------------------------------------------------------

    def snapshot(self):
        """A JSON-safe dict of every series currently non-trivial."""
        result = {"counters": {}, "gauges": {}, "histograms": {}}
        if not self.enabled:
            return result
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors.values())
        section = {COUNTER: result["counters"], GAUGE: result["gauges"],
                   HISTOGRAM: result["histograms"]}
        for family in families:
            rows = []
            for labels, child in family.series():
                if family.kind == HISTOGRAM:
                    if child.count:
                        rows.append({"labels": labels,
                                     "summary": child.summary()})
                else:
                    rows.append({"labels": labels, "value": child.value})
            if rows:
                section[family.kind][family.name] = rows
        for collect, _reset in collectors:
            for kind, name, labels, value in collect():
                section[kind].setdefault(name, []).append(
                    {"labels": dict(labels), "value": value})
        return result

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_text(self):
        """One ``name{label=value,...} value`` line per series."""
        return render_snapshot_text(self.snapshot())


def render_snapshot_text(snapshot):
    """Render a :meth:`MetricsRegistry.snapshot` dict (possibly taken
    in another process — the serve daemon ships its snapshot to
    ``repro serve --status`` over a socket) as one
    ``name{label=value,...} value`` line per series."""
    lines = []
    for section in ("counters", "gauges"):
        for name in sorted(snapshot.get(section, {})):
            for row in snapshot[section][name]:
                lines.append("%s%s %s" % (
                    name, _label_suffix(row["labels"]), row["value"]))
    for name in sorted(snapshot.get("histograms", {})):
        for row in snapshot["histograms"][name]:
            summary = row["summary"]
            lines.append(
                "%s%s count=%d sum=%s p50=%s p99=%s" % (
                    name, _label_suffix(row["labels"]),
                    summary["count"], summary["sum"],
                    summary["p50"], summary["p99"]))
    return "\n".join(lines)


def _label_suffix(labels):
    if not labels:
        return ""
    inner = ",".join("%s=%s" % (key, labels[key])
                     for key in sorted(labels))
    return "{%s}" % inner


def series_value(snapshot_section, name, default=0, **labels):
    """Look one series up in a snapshot section (helper for report
    code consuming :meth:`MetricsRegistry.snapshot`)."""
    for row in snapshot_section.get(name, ()):
        if row["labels"] == labels:
            return row["value"]
    return default


def sum_series(snapshot_section, name, default=0):
    """Total a family across all its label combinations (e.g. every
    ``check`` of ``static_checks_total``).  Returns ``default`` when
    the family has no series at all."""
    rows = snapshot_section.get(name, ())
    if not rows:
        return default
    return sum(row["value"] for row in rows)
