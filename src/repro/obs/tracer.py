"""Simulator event tracing with a Chrome trace-event exporter.

An :class:`EventTracer` collects timestamped simulator events —
instruction retire batches, cache misses, mesh routes, MPB allocations,
lock acquisitions, barrier entry/exit — into a bounded ring buffer.
Timestamps are *simulated cycles*; the exporter converts them to
microseconds so the file loads directly in ``chrome://tracing`` or
Perfetto with one track (``tid``) per simulated core and one process
(``pid``) per chip.

The disabled singleton :data:`NULL_EVENTS` is what every chip starts
with: emit sites guard on ``events.enabled`` (one attribute read), so
tracing costs nothing until a run opts in with
``chip.attach_events(tracer)``.
"""

import json
from collections import deque

DEFAULT_CAPACITY = 262_144

# Chrome trace-event phases used by the exporter.
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"
PHASE_METADATA = "M"


class EventTracer:
    """A ring buffer of simulator events.

    Events are ``(phase, pid, tid, ts_cycles, dur_cycles, name,
    category, args)`` tuples; the ring (``capacity`` events) keeps the
    newest events when a run overflows it, and ``dropped`` counts what
    fell out.
    """

    enabled = True

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self.capacity = capacity
        self.events = deque(maxlen=capacity)
        self.dropped = 0
        self.processes = {}          # pid -> name
        self.threads = {}            # (pid, tid) -> name

    # -- naming -----------------------------------------------------------------

    def set_process(self, pid, name):
        self.processes[pid] = name

    def set_thread(self, pid, tid, name):
        self.threads[(pid, tid)] = name

    # -- emit -------------------------------------------------------------------

    def _append(self, event):
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    def instant(self, tid, ts, name, category="sim", args=None, pid=0):
        """A point event at simulated cycle ``ts``."""
        self._append((PHASE_INSTANT, pid, tid, ts, 0, name, category,
                      args))

    def complete(self, tid, ts, dur, name, category="sim", args=None,
                 pid=0):
        """A span covering ``[ts, ts + dur]`` simulated cycles."""
        self._append((PHASE_COMPLETE, pid, tid, ts, dur, name, category,
                      args))

    def counter(self, tid, ts, name, values, pid=0):
        """A counter sample (one Chrome counter track per name)."""
        self._append((PHASE_COUNTER, pid, tid, ts, 0, name, "counter",
                      dict(values)))

    # -- inspection -------------------------------------------------------------

    def __len__(self):
        return len(self.events)

    def clear(self):
        self.events.clear()
        self.dropped = 0

    def core_tracks(self):
        """The set of (pid, tid) pairs that emitted any event."""
        return {(event[1], event[2]) for event in self.events}

    def events_named(self, name):
        return [event for event in self.events if event[5] == name]

    # -- Chrome trace-event export ----------------------------------------------

    def to_chrome(self, cycles_per_us=800.0):
        """The trace as a Chrome trace-event JSON object.

        ``cycles_per_us`` converts simulated cycles to microseconds;
        pass the chip's core frequency in MHz (cycles per microsecond)
        so trace time equals simulated time.
        """
        trace_events = []
        for pid in sorted(self.processes):
            trace_events.append({
                "ph": PHASE_METADATA, "pid": pid, "tid": 0,
                "name": "process_name",
                "args": {"name": self.processes[pid]},
            })
        for (pid, tid) in sorted(self.threads):
            trace_events.append({
                "ph": PHASE_METADATA, "pid": pid, "tid": tid,
                "name": "thread_name",
                "args": {"name": self.threads[(pid, tid)]},
            })
            trace_events.append({
                "ph": PHASE_METADATA, "pid": pid, "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            })
        for phase, pid, tid, ts, dur, name, category, args in self.events:
            event = {
                "ph": phase, "pid": pid, "tid": tid,
                "ts": ts / cycles_per_us,
                "name": name, "cat": category,
            }
            if phase == PHASE_COMPLETE:
                event["dur"] = dur / cycles_per_us
            if phase == PHASE_INSTANT:
                event["s"] = "t"  # thread-scoped instant
            if args:
                event["args"] = args
            trace_events.append(event)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated cycles / %g MHz" % cycles_per_us,
                "dropped_events": self.dropped,
            },
        }

    def write_chrome(self, path, cycles_per_us=800.0):
        """Write the Chrome trace JSON file; returns the event count."""
        trace = self.to_chrome(cycles_per_us)
        with open(path, "w") as handle:
            json.dump(trace, handle)
        return len(trace["traceEvents"])


class _DisabledTracer:
    """The no-op tracer every chip starts with."""

    enabled = False

    def set_process(self, pid, name):
        pass

    def set_thread(self, pid, tid, name):
        pass

    def instant(self, tid, ts, name, category="sim", args=None, pid=0):
        pass

    def complete(self, tid, ts, dur, name, category="sim", args=None,
                 pid=0):
        pass

    def counter(self, tid, ts, name, values, pid=0):
        pass

    def __len__(self):
        return 0


NULL_EVENTS = _DisabledTracer()
