"""The pipeline profiler: wall-time spans around framework stages,
IR passes, and benchmark runs.

A :class:`PipelineProfiler` records a tree of named spans.  The pass
:class:`~repro.ir.passes.Driver` opens one span per pass when a
profiler is attached, and each analysis pass annotates its span with
stage-specific statistics (variables classified, points-to rounds to
fixpoint, partition bytes on/off-chip) via
``Pass.profile_stats``.  ``stage_summary()`` folds the pass spans into
the paper's five stages for the CLI's ``--profile`` report.
"""

import time


class Span:
    """One profiled region."""

    __slots__ = ("name", "start", "end", "stats", "children")

    def __init__(self, name, start):
        self.name = name
        self.start = start
        self.end = None
        self.stats = {}
        self.children = []

    @property
    def wall_seconds(self):
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self):
        entry = {"name": self.name, "wall_seconds": self.wall_seconds,
                 "stats": dict(self.stats)}
        if self.children:
            entry["children"] = [c.to_dict() for c in self.children]
        return entry

    def __repr__(self):
        return "Span(%s: %.6fs, %r)" % (self.name, self.wall_seconds,
                                        self.stats)


class _SpanContext:
    """Context manager for one span; re-entrant safe via the stack."""

    __slots__ = ("profiler", "span")

    def __init__(self, profiler, span):
        self.profiler = profiler
        self.span = span

    def __enter__(self):
        return self.span

    def __exit__(self, exc_type, exc, tb):
        self.profiler._close(self.span)
        return False


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class PipelineProfiler:
    """Collects a forest of wall-time spans.

    Disabled profilers (``enabled=False``) hand out a shared no-op
    context so instrumented call sites cost one attribute check.
    """

    def __init__(self, enabled=True, clock=None):
        self.enabled = enabled
        self.clock = clock or time.perf_counter
        self.spans = []      # top-level spans, in order
        self._stack = []
        self.epoch = self.clock()

    # -- recording --------------------------------------------------------------

    def span(self, name, **stats):
        """Open a span: ``with profiler.span("stage1-..."): ...``"""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        span = Span(name, self.clock())
        span.stats.update(stats)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span):
        span.end = self.clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def annotate(self, **stats):
        """Attach statistics to the innermost open span."""
        if self.enabled and self._stack:
            self._stack[-1].stats.update(stats)

    def reset(self):
        self.spans = []
        self._stack = []
        self.epoch = self.clock()

    # -- reports ----------------------------------------------------------------

    def report(self):
        """The span forest as JSON-safe dicts, with start offsets
        relative to the profiler's epoch."""
        entries = []
        for span in self.spans:
            entry = span.to_dict()
            entry["start_offset_seconds"] = span.start - self.epoch
            entries.append(entry)
        return entries

    def stage_summary(self):
        """Aggregate top-level pass spans into the paper's five stages.

        A span named ``stage3-alias-pointer-analysis`` lands in stage
        ``stage3``; non-stage spans keep their own name.  Returns
        ordered ``(stage, wall_seconds, start_offset, stats)`` rows.
        """
        rows = {}
        order = []
        for span in self.spans:
            stage = span.name
            if span.name.startswith("stage"):
                stage = span.name.split("-", 1)[0]
            if stage not in rows:
                rows[stage] = {"stage": stage, "wall_seconds": 0.0,
                               "start_offset_seconds":
                                   span.start - self.epoch,
                               "stats": {}}
                order.append(stage)
            rows[stage]["wall_seconds"] += span.wall_seconds
            rows[stage]["stats"].update(span.stats)
        return [rows[stage] for stage in order]

    def render(self, indent=""):
        """Human-readable per-stage profile."""
        lines = []
        total = sum(span.wall_seconds for span in self.spans)
        lines.append("%spipeline profile (total %.6f s):"
                     % (indent, total))
        for row in self.stage_summary():
            stats = " ".join("%s=%s" % (key, row["stats"][key])
                             for key in sorted(row["stats"]))
            lines.append("%s  %-10s +%.6fs %10.6f s  %s"
                         % (indent, row["stage"],
                            row["start_offset_seconds"],
                            row["wall_seconds"], stats))
        return "\n".join(lines)
