"""The supervised re-run report.

The supervisor itself lives in :func:`repro.sim.runner.
run_rcce_supervised`; this module holds its structured outcome so the
CLI, diagnostics, and metrics layers can consume one object:
which attempts failed and why, which checkpoint round each restart
resumed from, and whether the campaign ultimately recovered.
"""

from repro.diagnostics import INFO, WARNING, Diagnostic
from repro.faults import CoreCrashFault
from repro.recovery.ecc import UncorrectableECCError
from repro.sim.watchdog import SimulationTimeout

# Failures worth a supervised restart: one-shot crashes do not re-fire
# on replay, and a hung attempt may have been wedged by the fault the
# checkpoint predates.  Everything else (parse errors, divergence,
# retry exhaustion — all deterministic under replay) fails fast.  The
# job service (``repro.serve``) keys its retry policy on the same
# taxonomy: a worker death is retried only when its cause is listed
# here.
RESTARTABLE_ERRORS = (CoreCrashFault, SimulationTimeout,
                      UncorrectableECCError)


class RecoveryReport:
    """Outcome of one supervised campaign (N attempts, <= N-1 restarts)."""

    def __init__(self, max_restarts=0):
        self.max_restarts = max_restarts
        self.failures = []   # one dict per failed attempt
        self.restarts = 0    # restarts actually performed
        self.recovered = False

    def record_failure(self, attempt, exc, restored_round=None,
                       audit=None, shard=None):
        self.failures.append({
            "attempt": attempt,
            "error": type(exc).__name__,
            "message": str(exc).splitlines()[0] if str(exc) else "",
            "restored_from_round": restored_round,
            # the failed attempt's RaceReport (race=... runs), so an
            # audit finding that died with the attempt still surfaces
            "audit": audit,
            # parallel-backend shard supervision: which shard's worker
            # died/stalled (None for whole-run supervised restarts)
            "shard": shard,
        })

    @property
    def attempts(self):
        """Attempts started (failures plus the final one)."""
        return len(self.failures) + 1

    def as_dict(self):
        failures = []
        for failure in self.failures:
            entry = dict(failure)
            audit = entry.get("audit")
            if audit is not None:
                entry["audit"] = audit.as_dict() \
                    if hasattr(audit, "as_dict") else audit
            failures.append(entry)
        return {"max_restarts": self.max_restarts,
                "restarts": self.restarts,
                "recovered": self.recovered,
                "failures": failures}

    def diagnostics(self):
        """The report as pipeline-style diagnostics (stage
        'recovery'), for ``RunResult.diagnostics`` and the CLI."""
        found = []
        for failure in self.failures:
            where = failure["restored_from_round"]
            shard = failure.get("shard")
            if shard is not None:
                # restored_from_round None = the failure that
                # exhausted the budget (no respawn happened); 0 = a
                # respawn that replayed from program start
                found.append(Diagnostic(
                    "recovery", WARNING,
                    "shard %d worker attempt %d failed (%s: %s); %s"
                    % (shard, failure["attempt"] + 1,
                       failure["error"], failure["message"],
                       "restart budget exhausted" if where is None
                       else "respawned and replayed through quantum "
                       "tick %d" % where
                       if where else "respawned and replayed from "
                       "the beginning")))
                continue
            found.append(Diagnostic(
                "recovery", WARNING,
                "attempt %d failed (%s: %s); restarted %s"
                % (failure["attempt"] + 1, failure["error"],
                   failure["message"],
                   "from checkpoint round %d" % where
                   if where is not None else "from the beginning")))
            audit = failure.get("audit")
            if audit is not None and audit.findings:
                found.append(Diagnostic(
                    "recovery", WARNING,
                    "attempt %d's race audit reported %d finding(s) "
                    "before the failure"
                    % (failure["attempt"] + 1, len(audit.findings))))
        if self.recovered:
            found.append(Diagnostic(
                "recovery", INFO,
                "run completed after %d restart(s)" % self.restarts))
        return found

    def __repr__(self):
        return "RecoveryReport(restarts=%d, recovered=%r)" % (
            self.restarts, self.recovered)
