"""Sequence-numbered, idempotent RCCE sends with bounded backoff.

Without recovery, an injected ``mesh_drop`` only re-prices memory
accesses (the PR 3 model: the access pays its cost twice).  With the
recovery layer on, the fault layer additionally exposes *message*
drops to ``RCCE_send``: each transmission of a message draws from the
same per-(rule, core) RNG streams, and a dropped transmission is
retried with exponential backoff instead of wedging the rendezvous.

Every message carries a per-(source, dest) sequence number all the way
into the channel, whose receiver discards duplicate deliveries — a
retransmitted message is idempotent even if the drop hit the ack
rather than the payload.  A message still undeliverable after
``max_attempts`` transmissions raises
:class:`MeshRetryExhaustedError` (an ``InterpreterError`` — CLI exit
70, supervisor-restartable like any other fatal simulated failure).

Timing: every dropped transmission charges the sender the full
transfer cost plus the backoff window, so absorbed faults still show
up in the cycle accounting — recovery is not free, it is bounded.
"""

import threading

from repro.sim.interpreter import InterpreterError


class MeshRetryExhaustedError(InterpreterError):
    """A message was dropped on every transmission attempt."""

    def __init__(self, message, source=None, dest=None, attempts=None):
        super().__init__(message)
        self.source = source
        self.dest = dest
        self.attempts = attempts


class RetryPolicy:
    """Bounded exponential backoff: attempt ``k``'s retry waits
    ``base_cycles * factor**(k-1)`` cycles, capped at ``max_cycles``."""

    __slots__ = ("max_attempts", "base_cycles", "factor", "max_cycles")

    def __init__(self, max_attempts=6, base_cycles=64, factor=2,
                 max_cycles=4096):
        if max_attempts < 1:
            raise ValueError("need at least one send attempt")
        self.max_attempts = max_attempts
        self.base_cycles = base_cycles
        self.factor = factor
        self.max_cycles = max_cycles

    def backoff_cycles(self, attempt):
        return min(self.base_cycles * self.factor ** (attempt - 1),
                   self.max_cycles)


class SendRetrier:
    """Retries dropped RCCE_send transmissions; owned by one
    ``RCCEWorld`` (``world.retrier``, None by default so the send path
    stays a single attribute check)."""

    def __init__(self, injector=None, policy=None):
        self.injector = injector
        self.policy = policy or RetryPolicy()
        self.retries = {}   # core -> retransmissions
        self.exhausted = 0
        self._seq = {}      # (source rank, dest rank) -> next seq
        self._lock = threading.Lock()

    def next_seq(self, source, dest):
        """The next sequence number for the (source, dest) stream.
        Sends on one stream are ordered by the rendezvous channel, so
        numbering is deterministic."""
        key = (source, dest)
        with self._lock:
            seq = self._seq.get(key, 0)
            self._seq[key] = seq + 1
        return seq

    def reset_counts(self):
        self.retries.clear()
        self.exhausted = 0

    def total_retries(self):
        return sum(self.retries.values())

    def transmit(self, runtime, interp, dest, seq, cost):
        """Model the transmissions of one message; returns the extra
        cycles the sender burned on dropped attempts (zero on a clean
        first transmission, and always zero with no injector)."""
        injector = self.injector
        if injector is None:
            return 0
        chip = runtime.world.chip
        core = interp.core_id
        extra = 0
        attempt = 1
        while injector.message_dropped(core, interp.cycles + extra,
                                       seq):
            if attempt >= self.policy.max_attempts:
                self.exhausted += 1
                raise MeshRetryExhaustedError(
                    "RCCE_send from UE %d to UE %d dropped on all %d "
                    "attempts (seq %d)"
                    % (runtime.rank, dest, attempt, seq),
                    source=runtime.rank, dest=dest, attempts=attempt)
            backoff = self.policy.backoff_cycles(attempt)
            extra += cost + backoff
            self.retries[core] = self.retries.get(core, 0) + 1
            chip.mesh.record_retry()
            if chip.events.enabled:
                chip.events.instant(
                    core, interp.cycles + extra, "send_retry",
                    "recovery",
                    {"dest": dest, "seq": seq, "attempt": attempt,
                     "backoff_cycles": backoff}, pid=chip.trace_pid)
            attempt += 1
        return extra
