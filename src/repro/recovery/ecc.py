"""ECC-style memory protection for the simulated MPB and DRAM.

The SCC's memories are modelled as a value store that always holds the
last written word; an injected ``mpb_flip``/``dram_flip`` corrupts the
*returned* copy of a read, exactly like a transient upset on the wire
or in a cell read path.  That makes a SECDED (single-error-correct,
double-error-detect) code straightforward to model: the scrubber
compares the corrupted word's 64-bit image against the stored word's
and counts the differing bits — the syndrome weight.

* weight 1 — corrected in place: the read returns the true value, the
  core pays :data:`ECC_SCRUB_CYCLES` for the correction write-back,
  and ``ecc_corrected`` counters/trace events record the save;
* weight >= 2 — detected but uncorrectable:
  :class:`UncorrectableECCError` (an ``InterpreterError``, so the CLI
  exits 70 and the supervisor can restart from a checkpoint).

With no scrubber attached the interpreter's hook is a dead
``is not None`` branch nested inside the fault hook, so both the
un-faulted and the unprotected-faulted paths are byte-identical to the
previous layer.
"""

import struct

from repro.scc.memmap import SegmentKind
from repro.sim.interpreter import InterpreterError

# Cycles charged for one in-place correction (syndrome decode plus the
# corrected word's write-back) — small against any mesh round trip.
ECC_SCRUB_CYCLES = 20


class UncorrectableECCError(InterpreterError):
    """A read's syndrome weight exceeded SECDED's correction power."""

    def __init__(self, message, core=None, addr=None):
        super().__init__(message)
        self.core = core
        self.addr = addr


def _word_image(value):
    """A value's 64-bit storage image, or None for non-numerics."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if isinstance(value, int):
        return value & 0xFFFFFFFFFFFFFFFF
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def syndrome_weight(corrupted, stored):
    """Differing bits between a read value and the stored word; None
    when the pair is not bit-comparable (never produced by the
    injector, which leaves non-numerics alone)."""
    lhs = _word_image(corrupted)
    rhs = _word_image(stored)
    if lhs is None or rhs is None:
        return None
    return bin(lhs ^ rhs).count("1")


class ECCScrubber:
    """Per-line SECDED tags over the MPB and DRAM, as a read filter.

    Attached as ``chip.ecc`` and mirrored into each interpreter; the
    interpreter calls :meth:`scrub` only when the fault layer actually
    flipped a loaded value, so the clean-read path is untouched.
    """

    COLLECTOR_NAME = "recovery.ecc"

    def __init__(self, scrub_cycles=None):
        self.scrub_cycles = ECC_SCRUB_CYCLES if scrub_cycles is None \
            else scrub_cycles
        self.corrected = {}      # core -> corrections
        self.uncorrectable = {}  # core -> detected-fatal reads
        self.chip = None

    # -- wiring ------------------------------------------------------------

    def attach(self, chip):
        self.chip = chip
        chip.ecc = self
        chip.metrics.register_collector(
            self.COLLECTOR_NAME, self._collect_metrics, self._reset)
        return self

    def detach(self):
        if self.chip is not None:
            if self.chip.ecc is self:
                self.chip.ecc = None
            self.chip.metrics.unregister_collector(self.COLLECTOR_NAME)
            self.chip = None

    def _collect_metrics(self):
        samples = [("counter", "ecc_corrected", {"core": core}, count)
                   for core, count in sorted(self.corrected.items())]
        samples.extend(
            ("counter", "ecc_uncorrectable", {"core": core}, count)
            for core, count in sorted(self.uncorrectable.items()))
        return samples

    def _reset(self):
        self.corrected.clear()
        self.uncorrectable.clear()

    def total_corrected(self):
        return sum(self.corrected.values())

    # -- the read filter ---------------------------------------------------

    def scrub(self, interp, addr, corrupted, stored):
        """Called by ``Interpreter.load`` after the fault layer flipped
        a read: correct or condemn it.  Returns the value the program
        sees."""
        chip = interp.chip
        core = interp.core_id
        weight = syndrome_weight(corrupted, stored)
        if weight is not None and weight <= 1:
            self.corrected[core] = self.corrected.get(core, 0) + 1
            segment = chip.address_space.resolve(addr)[0]
            if segment is SegmentKind.MPB:
                chip.mpb.stats.ecc_corrected += 1
            else:
                controller = chip.controllers[
                    chip.mesh.controller_of(core)]
                controller.stats.ecc_corrected += 1
            interp.charge(self.scrub_cycles)
            if interp._attr is not None:
                interp._attr.add(core, "ecc_scrub", self.scrub_cycles)
            if chip.events.enabled:
                chip.events.instant(
                    core, interp.cycles, "ecc_correct", "recovery",
                    {"addr": addr, "segment": str(segment)},
                    pid=chip.trace_pid)
            return stored
        self.uncorrectable[core] = self.uncorrectable.get(core, 0) + 1
        if chip.events.enabled:
            chip.events.instant(
                core, interp.cycles, "ecc_uncorrectable", "recovery",
                {"addr": addr, "bits": weight}, pid=chip.trace_pid)
        raise UncorrectableECCError(
            "uncorrectable ECC error on core %d at address 0x%x "
            "(%s flipped bits)" % (core, addr,
                                   weight if weight is not None
                                   else "untagged"),
            core=core, addr=addr)
