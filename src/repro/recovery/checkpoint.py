"""Barrier-aligned checkpoint/restore for RCCE simulations.

A :class:`ClockBarrier`'s phase-1 action runs while every party thread
is parked inside ``wait`` — a natural quiesce point where the whole
architectural state of the simulation is stable: DRAM/MPB contents,
the LUT-backed allocation map, the test-and-set registers, and each
core's cycle/step cursors.  :class:`CheckpointManager` serializes that
state to a versioned JSON snapshot every N barrier rounds.

**Restore is verified replay.**  The tree engine's execution state is
a live Python call stack and cannot be serialized mid-flight, but the
simulator is deterministic: restoring a snapshot means re-executing
the program from the start and, when the recorded barrier round is
reached, verifying that the replayed state matches the snapshot
byte-for-byte (clocks, per-core cursors, output, memory digest, LUT,
registers).  A mismatch raises :class:`SnapshotDivergenceError`; a
match certifies that the continuation is exactly the run the snapshot
came from.  Under the supervisor, a restarted attempt keeps the same
fault injector (one-shot faults stay fired) with its RNG streams
reset, so the replayed prefix reproduces the original injection
schedule and the verification holds even for faulted campaigns.

Snapshot files are self-describing: ``format``/``version`` headers, a
fingerprint of the :class:`~repro.scc.config.SCCConfig`, the source
sha, and a sha-256 digest over the encoded memory image.  Malformed or
mismatched snapshots raise :class:`SnapshotError` (the CLI maps it to
exit code 65).
"""

import hashlib
import json
import os

from repro.sim.values import FunctionRef, Pointer

SNAPSHOT_MAGIC = "repro-snapshot"
SNAPSHOT_VERSION = 1

_REQUIRED_KEYS = ("format", "version", "config", "num_ues", "core_map",
                  "round", "clocks", "cores", "output_sha",
                  "memory_digest", "memory", "registers", "lut")


class SnapshotError(Exception):
    """A snapshot file is malformed, truncated, or unusable."""


class SnapshotMismatchError(SnapshotError):
    """The snapshot does not belong to this run (config, source, or
    topology differs)."""


class SnapshotDivergenceError(SnapshotError):
    """Replayed state did not match the snapshot at its barrier round."""


def _encode_value(value):
    """One simulated memory word as a JSON-safe form.  Scalars stay
    native (JSON round-trips Python ints and reprs floats exactly);
    non-scalars get a small tagged list."""
    if isinstance(value, bool):
        return ["b", int(value)]
    if value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Pointer):
        return ["p", value.addr, value.stride]
    if isinstance(value, FunctionRef):
        return ["fn", value.name]
    return ["x", repr(value)]


def encode_memory(items):
    """Sorted ``(addr, value)`` pairs -> JSON-safe nested lists."""
    return [[addr, _encode_value(value)] for addr, value in items]


def memory_digest(encoded):
    """Content hash of an encoded memory image (order included)."""
    payload = json.dumps(encoded, separators=(",", ":"),
                         sort_keys=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_fingerprint(config):
    """The scalar attributes of an SCCConfig, for compatibility
    checks between the snapshotting run and the restoring run."""
    return {name: value for name, value in sorted(vars(config).items())
            if isinstance(value, (bool, int, float, str))}


class Snapshot:
    """A parsed, validated snapshot document."""

    def __init__(self, doc, path=None):
        self.doc = doc
        self.path = path

    @property
    def round(self):
        return self.doc["round"]

    @property
    def num_ues(self):
        return self.doc["num_ues"]

    @property
    def core_map(self):
        return list(self.doc["core_map"])

    def state(self):
        """The replay-comparable subset of the document."""
        return {key: self.doc[key]
                for key in ("round", "clocks", "cores", "output_sha",
                            "memory_digest", "registers", "lut")}


def load_snapshot(path, config=None, source_sha=None):
    """Read and validate a snapshot file.

    Raises :class:`SnapshotError` for anything malformed (bad JSON,
    wrong magic/version, missing sections, a memory image whose digest
    does not match) and :class:`SnapshotMismatchError` when ``config``
    or ``source_sha`` disagree with what the snapshot records.
    """
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except ValueError as exc:
            raise SnapshotError(
                "%s is not a valid snapshot (truncated or corrupt "
                "JSON: %s)" % (path, exc)) from None
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_MAGIC:
        raise SnapshotError("%s is not a repro snapshot file" % path)
    if doc.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            "%s has snapshot version %r; this build reads version %d"
            % (path, doc.get("version"), SNAPSHOT_VERSION))
    missing = [key for key in _REQUIRED_KEYS if key not in doc]
    if missing:
        raise SnapshotError(
            "%s is missing snapshot section(s): %s"
            % (path, ", ".join(missing)))
    if memory_digest(doc["memory"]) != doc["memory_digest"]:
        raise SnapshotError(
            "%s memory image does not match its recorded digest "
            "(truncated or corrupted file)" % path)
    if config is not None:
        recorded = doc["config"]
        current = config_fingerprint(config)
        for key in sorted(set(recorded) | set(current)):
            if recorded.get(key) != current.get(key):
                raise SnapshotMismatchError(
                    "%s was taken under a different SCCConfig: "
                    "%s is %r there but %r here"
                    % (path, key, recorded.get(key), current.get(key)))
    if source_sha is not None and doc.get("source_sha") is not None \
            and doc["source_sha"] != source_sha:
        raise SnapshotMismatchError(
            "%s was taken from a different program "
            "(source sha %s.. vs %s..)"
            % (path, doc["source_sha"][:12], source_sha[:12]))
    return Snapshot(doc, path)


class StateProbe:
    """Captures the quiescent simulation state at a barrier round.

    Built by the runner and shared by :class:`CheckpointManager` and
    :class:`ReplayVerifier` so both sides of a checkpoint/restore pair
    observe exactly the same fields.  ``capture`` only reads — it never
    perturbs clocks, memory, or metrics, keeping checkpointed runs
    byte-identical to uncheckpointed ones.
    """

    def __init__(self, chip, world, memory, interpreters, ranks,
                 num_ues, core_map, source_sha=None):
        self.chip = chip
        self.world = world
        self.memory = memory
        self.interpreters = interpreters
        self.ranks = ranks
        self.num_ues = num_ues
        self.core_map = list(core_map)
        self.source_sha = source_sha

    def header(self):
        return {
            "format": SNAPSHOT_MAGIC,
            "version": SNAPSHOT_VERSION,
            "config": config_fingerprint(self.chip.config),
            "num_ues": self.num_ues,
            "core_map": self.core_map,
            "engine": "tree",
            "source_sha": self.source_sha,
        }

    def capture(self, round_id):
        interps = sorted(self.interpreters, key=lambda i: i.core_id)
        cores = [{"core": interp.core_id,
                  "rank": self.ranks.get(interp.core_id),
                  "cycles": interp.cycles,
                  "steps": interp.steps}
                 for interp in interps]
        output = "".join("".join(interp.output) for interp in interps)
        encoded = encode_memory(self.memory.items())
        registers = self.world.registers
        lut = [[str(seg.kind), seg.base, seg.size,
                seg.owner, seg.label]
               for seg in sorted(self.chip.address_space.allocations,
                                 key=lambda s: s.base)]
        return {
            "round": round_id,
            "clocks": {str(rank): clock for rank, clock in sorted(
                self.world.barrier.published_clocks().items())},
            "cores": cores,
            "output_sha": hashlib.sha256(
                output.encode("utf-8")).hexdigest(),
            "memory_digest": memory_digest(encoded),
            "memory": encoded,
            "registers": {
                "owners": {str(k): v for k, v in sorted(
                    registers.owners.items())},
                "acquisitions": list(registers.acquisitions),
            },
            "lut": lut,
        }


class CheckpointManager:
    """Writes a snapshot of the run every ``every`` barrier rounds.

    The write is atomic (temp file + rename) so a crash mid-write
    never corrupts the previous good snapshot — the supervisor always
    finds either the old state or the new one.
    """

    COLLECTOR_NAME = "recovery.checkpoint"

    def __init__(self, path, every=1):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.path = path
        self.every = every
        self.captured = 0
        self.last_round = None
        self._probe = None

    def bind(self, probe):
        self._probe = probe
        probe.chip.metrics.register_collector(
            self.COLLECTOR_NAME, self._collect_metrics, self._reset)
        return self

    def unbind(self):
        if self._probe is not None:
            self._probe.chip.metrics.unregister_collector(
                self.COLLECTOR_NAME)
            self._probe = None

    def _collect_metrics(self):
        return [("counter", "checkpoints_captured", {}, self.captured)]

    def _reset(self):
        self.captured = 0

    def on_round(self, round_id):
        """Barrier phase-1 action hook: every party is parked."""
        probe = self._probe
        if probe is None or round_id % self.every:
            return
        doc = probe.header()
        doc.update(probe.capture(round_id))
        tmp = "%s.tmp" % self.path
        with open(tmp, "w") as handle:
            json.dump(doc, handle, separators=(",", ":"))
        os.replace(tmp, self.path)
        self.captured += 1
        self.last_round = round_id
        chip = probe.chip
        if chip.events.enabled:
            chip.events.instant(
                0, max(doc["clocks"].values() or [0]), "checkpoint",
                "recovery", {"round": round_id, "path": self.path},
                pid=chip.trace_pid)


class ReplayVerifier:
    """Certifies a restore-by-replay run against its snapshot.

    When the replayed run reaches the snapshot's barrier round, the
    captured state must match the recorded one field-for-field;
    afterwards the run *is* the original run continued past its
    checkpoint, so running to completion restores it.
    """

    def __init__(self, snapshot):
        self.snapshot = snapshot
        self.verified = False
        self._probe = None

    def bind(self, probe):
        self._probe = probe
        return self

    def on_round(self, round_id):
        if self.verified or self._probe is None \
                or round_id != self.snapshot.round:
            return
        expected = self.snapshot.state()
        observed = self._probe.capture(round_id)
        for key in ("round", "clocks", "cores", "output_sha",
                    "memory_digest", "registers", "lut"):
            if observed[key] != expected[key]:
                raise SnapshotDivergenceError(
                    "replay diverged from snapshot %s at barrier "
                    "round %d: %s differs"
                    % (self.snapshot.path or "<snapshot>", round_id,
                       key))
        self.verified = True
