"""Barrier-aligned checkpoint/restore for RCCE simulations.

A :class:`ClockBarrier`'s phase-1 action runs while every party thread
is parked inside ``wait`` — a natural quiesce point where the whole
architectural state of the simulation is stable: DRAM/MPB contents,
the LUT-backed allocation map, the test-and-set registers, and each
core's cycle/step cursors.  :class:`CheckpointManager` serializes that
state to a versioned JSON snapshot every N barrier rounds.

**Restore is verified replay.**  The tree engine's execution state is
a live Python call stack and cannot be serialized mid-flight, but the
simulator is deterministic: restoring a snapshot means re-executing
the program from the start and, when the recorded barrier round is
reached, verifying that the replayed state matches the snapshot
byte-for-byte (clocks, per-core cursors, output, memory digest, LUT,
registers).  A mismatch raises :class:`SnapshotDivergenceError`; a
match certifies that the continuation is exactly the run the snapshot
came from.  Under the supervisor, a restarted attempt keeps the same
fault injector (one-shot faults stay fired) with its RNG streams
reset, so the replayed prefix reproduces the original injection
schedule and the verification holds even for faulted campaigns.

Snapshot files are self-describing: ``format``/``version`` headers, a
fingerprint of the :class:`~repro.scc.config.SCCConfig`, the source
sha, and a sha-256 digest over the encoded memory image.  Malformed or
mismatched snapshots raise :class:`SnapshotError` (the CLI maps it to
exit code 65).
"""

import hashlib
import json
import os

from repro.sim.values import FunctionRef, Pointer

SNAPSHOT_MAGIC = "repro-snapshot"
SNAPSHOT_VERSION = 1

_REQUIRED_KEYS = ("format", "version", "config", "num_ues", "core_map",
                  "round", "clocks", "cores", "output_sha",
                  "memory_digest", "memory", "registers", "lut")


class SnapshotError(Exception):
    """A snapshot file is malformed, truncated, or unusable."""


class SnapshotMismatchError(SnapshotError):
    """The snapshot does not belong to this run (config, source, or
    topology differs)."""


class SnapshotDivergenceError(SnapshotError):
    """Replayed state did not match the snapshot at its barrier round."""


def _encode_value(value):
    """One simulated memory word as a JSON-safe form.  Scalars stay
    native (JSON round-trips Python ints and reprs floats exactly);
    non-scalars get a small tagged list."""
    if isinstance(value, bool):
        return ["b", int(value)]
    if value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Pointer):
        return ["p", value.addr, value.stride]
    if isinstance(value, FunctionRef):
        return ["fn", value.name]
    return ["x", repr(value)]


def encode_memory(items):
    """Sorted ``(addr, value)`` pairs -> JSON-safe nested lists."""
    return [[addr, _encode_value(value)] for addr, value in items]


def memory_digest(encoded):
    """Content hash of an encoded memory image (order included)."""
    payload = json.dumps(encoded, separators=(",", ":"),
                         sort_keys=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_fingerprint(config):
    """The scalar attributes of an SCCConfig, for compatibility
    checks between the snapshotting run and the restoring run."""
    return {name: value for name, value in sorted(vars(config).items())
            if isinstance(value, (bool, int, float, str))}


class Snapshot:
    """A parsed, validated snapshot document."""

    def __init__(self, doc, path=None):
        self.doc = doc
        self.path = path

    @property
    def round(self):
        return self.doc["round"]

    @property
    def num_ues(self):
        return self.doc["num_ues"]

    @property
    def core_map(self):
        return list(self.doc["core_map"])

    def state(self):
        """The replay-comparable subset of the document."""
        return {key: self.doc[key]
                for key in ("round", "clocks", "cores", "output_sha",
                            "memory_digest", "registers", "lut")}


def load_snapshot(path, config=None, source_sha=None):
    """Read and validate a snapshot file.

    Raises :class:`SnapshotError` for anything malformed (bad JSON,
    wrong magic/version, missing sections, a memory image whose digest
    does not match) and :class:`SnapshotMismatchError` when ``config``
    or ``source_sha`` disagree with what the snapshot records.
    """
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except ValueError as exc:
            raise SnapshotError(
                "%s is not a valid snapshot (truncated or corrupt "
                "JSON: %s)" % (path, exc)) from None
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_MAGIC:
        raise SnapshotError("%s is not a repro snapshot file" % path)
    if doc.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            "%s has snapshot version %r; this build reads version %d"
            % (path, doc.get("version"), SNAPSHOT_VERSION))
    missing = [key for key in _REQUIRED_KEYS if key not in doc]
    if missing:
        raise SnapshotError(
            "%s is missing snapshot section(s): %s"
            % (path, ", ".join(missing)))
    if memory_digest(doc["memory"]) != doc["memory_digest"]:
        raise SnapshotError(
            "%s memory image does not match its recorded digest "
            "(truncated or corrupted file)" % path)
    if config is not None:
        recorded = doc["config"]
        current = config_fingerprint(config)
        for key in sorted(set(recorded) | set(current)):
            if recorded.get(key) != current.get(key):
                raise SnapshotMismatchError(
                    "%s was taken under a different SCCConfig: "
                    "%s is %r there but %r here"
                    % (path, key, recorded.get(key), current.get(key)))
    if source_sha is not None and doc.get("source_sha") is not None \
            and doc["source_sha"] != source_sha:
        raise SnapshotMismatchError(
            "%s was taken from a different program "
            "(source sha %s.. vs %s..)"
            % (path, doc["source_sha"][:12], source_sha[:12]))
    return Snapshot(doc, path)


class StateProbe:
    """Captures the quiescent simulation state at a barrier round.

    Built by the runner and shared by :class:`CheckpointManager` and
    :class:`ReplayVerifier` so both sides of a checkpoint/restore pair
    observe exactly the same fields.  ``capture`` only reads — it never
    perturbs clocks, memory, or metrics, keeping checkpointed runs
    byte-identical to uncheckpointed ones.
    """

    def __init__(self, chip, world, memory, interpreters, ranks,
                 num_ues, core_map, source_sha=None):
        self.chip = chip
        self.world = world
        self.memory = memory
        self.interpreters = interpreters
        self.ranks = ranks
        self.num_ues = num_ues
        self.core_map = list(core_map)
        self.source_sha = source_sha

    def header(self):
        return {
            "format": SNAPSHOT_MAGIC,
            "version": SNAPSHOT_VERSION,
            "config": config_fingerprint(self.chip.config),
            "num_ues": self.num_ues,
            "core_map": self.core_map,
            "engine": "tree",
            "source_sha": self.source_sha,
        }

    def capture(self, round_id):
        interps = sorted(self.interpreters, key=lambda i: i.core_id)
        cores = [{"core": interp.core_id,
                  "rank": self.ranks.get(interp.core_id),
                  "cycles": interp.cycles,
                  "steps": interp.steps}
                 for interp in interps]
        output = "".join("".join(interp.output) for interp in interps)
        encoded = encode_memory(self.memory.items())
        registers = self.world.registers
        lut = [[str(seg.kind), seg.base, seg.size,
                seg.owner, seg.label]
               for seg in sorted(self.chip.address_space.allocations,
                                 key=lambda s: s.base)]
        return {
            "round": round_id,
            "clocks": {str(rank): clock for rank, clock in sorted(
                self.world.barrier.published_clocks().items())},
            "cores": cores,
            "output_sha": hashlib.sha256(
                output.encode("utf-8")).hexdigest(),
            "memory_digest": memory_digest(encoded),
            "memory": encoded,
            "registers": {
                "owners": {str(k): v for k, v in sorted(
                    registers.owners.items())},
                "acquisitions": list(registers.acquisitions),
            },
            "lut": lut,
        }


class CheckpointManager:
    """Writes a snapshot of the run every ``every`` barrier rounds.

    The write is atomic (temp file + rename) so a crash mid-write
    never corrupts the previous good snapshot — the supervisor always
    finds either the old state or the new one.
    """

    COLLECTOR_NAME = "recovery.checkpoint"

    def __init__(self, path, every=1):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.path = path
        self.every = every
        self.captured = 0
        self.last_round = None
        self._probe = None

    def bind(self, probe):
        self._probe = probe
        probe.chip.metrics.register_collector(
            self.COLLECTOR_NAME, self._collect_metrics, self._reset)
        return self

    def unbind(self):
        if self._probe is not None:
            self._probe.chip.metrics.unregister_collector(
                self.COLLECTOR_NAME)
            self._probe = None

    def _collect_metrics(self):
        return [("counter", "checkpoints_captured", {}, self.captured)]

    def _reset(self):
        self.captured = 0

    def on_round(self, round_id):
        """Barrier phase-1 action hook: every party is parked."""
        probe = self._probe
        if probe is None or round_id % self.every:
            return
        doc = probe.header()
        doc.update(probe.capture(round_id))
        tmp = "%s.tmp" % self.path
        with open(tmp, "w") as handle:
            json.dump(doc, handle, separators=(",", ":"))
        os.replace(tmp, self.path)
        self.captured += 1
        self.last_round = round_id
        chip = probe.chip
        if chip.events.enabled:
            chip.events.instant(
                0, max(doc["clocks"].values() or [0]), "checkpoint",
                "recovery", {"round": round_id, "path": self.path},
                pid=chip.trace_pid)


class ReplayVerifier:
    """Certifies a restore-by-replay run against its snapshot.

    When the replayed run reaches the snapshot's barrier round, the
    captured state must match the recorded one field-for-field;
    afterwards the run *is* the original run continued past its
    checkpoint, so running to completion restores it.
    """

    def __init__(self, snapshot):
        self.snapshot = snapshot
        self.verified = False
        self._probe = None

    def bind(self, probe):
        self._probe = probe
        return self

    def on_round(self, round_id):
        if self.verified or self._probe is None \
                or round_id != self.snapshot.round:
            return
        expected = self.snapshot.state()
        observed = self._probe.capture(round_id)
        for key in ("round", "clocks", "cores", "output_sha",
                    "memory_digest", "registers", "lut"):
            if observed[key] != expected[key]:
                raise SnapshotDivergenceError(
                    "replay diverged from snapshot %s at barrier "
                    "round %d: %s differs"
                    % (self.snapshot.path or "<snapshot>", round_id,
                       key))
        self.verified = True


class ShardCheckpoint:
    """Quantum-aligned recovery record for one shard of the parallel
    process backend (``repro.sim.parallel``).

    A worker's interpreter state is a live Python call stack and
    cannot travel over a pipe, so — exactly like :class:`ReplayVerifier`
    above — a shard restore is **verified replay**: the respawned
    worker re-executes its ranks from program start while the
    coordinator serves it the *recorded* reply for every sync RPC it
    already answered, without touching the live sync state machine.
    Because each rank's execution between coordinator replies is
    deterministic, the replayed shard arrives back at the crash
    frontier with byte-identical memory, clocks, and output, then
    seamlessly transitions to live requests.

    The record kept per rank:

    * ``replies`` — every coordinator reply, verbatim, as
      ``(op, status, payload, batch)``; ``batch`` carries the shared
      write versions shipped with that reply, so the replayed shard's
      memory evolves through exactly the recorded sequence.
    * ``delta_counts`` / ``delta_hashes`` — how many shared-write log
      entries the rank has contributed and an order-sensitive rolling
      hash over them.  During replay the re-produced entries are
      *suppressed* (already in the global log) and verified against
      the hash at the boundary; entries beyond the recorded count are
      fresh work and re-enter the log live.

    ``acked_tick`` is the last coordinator-acknowledged quantum tick —
    the "restored from quantum N" figure in the recovery report.  Any
    divergence between replayed and recorded execution raises
    :class:`SnapshotDivergenceError` (the verified-replay contract).
    """

    def __init__(self, shard, ranks):
        self.shard = shard
        self.ranks = list(ranks)
        self.replies = {rank: [] for rank in self.ranks}
        self.cursors = {rank: 0 for rank in self.ranks}
        self.delta_counts = {rank: 0 for rank in self.ranks}
        self.delta_hashes = {rank: b"" for rank in self.ranks}
        self.replay_counts = dict(self.delta_counts)
        self.replay_hashes = dict(self.delta_hashes)
        self.acked_tick = 0
        self.restores = 0

    # -- recording (normal operation) ----------------------------------

    def record_reply(self, rank, op, status, payload, batch):
        """A reply the coordinator is about to send to ``rank``."""
        self.replies[rank].append((op, status, payload, batch))
        self.cursors[rank] += 1

    def note_tick(self, tick):
        """The coordinator acknowledged quantum tick ``tick``."""
        if tick > self.acked_tick:
            self.acked_tick = tick

    # -- replay (after a respawn) --------------------------------------

    def begin_replay(self):
        """Rewind the per-rank cursors for a respawned worker."""
        self.restores += 1
        self.cursors = {rank: 0 for rank in self.cursors}
        self.replay_counts = {rank: 0 for rank in self.delta_counts}
        self.replay_hashes = {rank: b"" for rank in self.delta_hashes}

    def replaying(self, rank):
        """Whether ``rank``'s next request is answered from the
        record rather than the live sync state machine."""
        return self.cursors[rank] < len(self.replies[rank])

    def next_reply(self, rank, op):
        """The recorded reply for ``rank``'s current request, which
        must ask for the same ``op`` the original run asked for."""
        cursor = self.cursors[rank]
        recorded = self.replies[rank][cursor]
        if recorded[0] != op:
            raise SnapshotDivergenceError(
                "shard %d replay diverged: rank %d asked for %r at "
                "reply %d but the recorded run asked for %r"
                % (self.shard, rank, op, cursor, recorded[0]))
        self.cursors[rank] = cursor + 1
        return recorded

    def _track(self, rank):
        """Lazily register a write stream the plan did not predict —
        notably ``rank is None``, the worker's main thread logging
        shared writes during single-threaded world setup (before rank
        threads bind).  That stream is just as deterministic as a
        rank's, so it gets the same cursor treatment."""
        if rank not in self.delta_counts:
            self.delta_counts[rank] = 0
            self.delta_hashes[rank] = b""
            self.replay_counts[rank] = 0
            self.replay_hashes[rank] = b""

    def record_delta(self, rank, addr, value):
        """Fold one shared-write log entry from ``rank`` into the
        per-rank cursor state.  Returns True when the entry is new
        (append it to the global log); False when it merely replays
        an already-logged write (suppress it)."""
        self._track(rank)
        token = repr((addr, value)).encode("utf-8")
        if self.replay_counts[rank] < self.delta_counts[rank]:
            self.replay_hashes[rank] = hashlib.sha256(
                self.replay_hashes[rank] + token).digest()
            self.replay_counts[rank] += 1
            if self.replay_counts[rank] == self.delta_counts[rank] \
                    and self.replay_hashes[rank] \
                    != self.delta_hashes[rank]:
                raise SnapshotDivergenceError(
                    "shard %d replay diverged: rank %d re-produced "
                    "%d shared writes but their content differs from "
                    "the recorded run" % (self.shard, rank,
                                          self.delta_counts[rank]))
            return False
        self.delta_counts[rank] += 1
        self.delta_hashes[rank] = hashlib.sha256(
            self.delta_hashes[rank] + token).digest()
        self.replay_counts[rank] = self.delta_counts[rank]
        self.replay_hashes[rank] = self.delta_hashes[rank]
        return True

    def as_dict(self):
        """Diagnostic summary (not a serialization format)."""
        return {
            "shard": self.shard,
            "ranks": list(self.ranks),
            "acked_tick": self.acked_tick,
            "restores": self.restores,
            "recorded_replies": {rank: len(entries) for rank, entries
                                 in sorted(self.replies.items())},
            # the None stream (main-thread setup writes) sorts first
            "delta_counts": dict(sorted(
                self.delta_counts.items(),
                key=lambda item: (item[0] is not None, item[0] or 0))),
        }
