"""The recovery layer: make seeded fault campaigns survivable.

Four cooperating pieces close PR 3's inject -> detect loop with
*recover*:

* :mod:`repro.recovery.ecc` — SECDED-style scrubbing of flipped
  MPB/DRAM reads (correct single-bit, condemn multi-bit);
* :mod:`repro.recovery.retry` — sequence-numbered, idempotent
  ``RCCE_send`` with bounded exponential backoff over message drops;
* :mod:`repro.recovery.checkpoint` — barrier-aligned versioned
  snapshots plus restore-by-verified-replay;
* :mod:`repro.recovery.supervisor` — the report object behind
  :func:`repro.sim.runner.run_rcce_supervised`.

Everything defaults off; with a ``RecoveryOptions`` absent (or all
fields false) every hook in the chip, world, and interpreter is a
single ``is not None`` branch and runs are byte-identical to a build
without this package.
"""

from repro.recovery.checkpoint import (  # noqa: F401
    SNAPSHOT_VERSION,
    CheckpointManager,
    ReplayVerifier,
    ShardCheckpoint,
    Snapshot,
    SnapshotDivergenceError,
    SnapshotError,
    SnapshotMismatchError,
    StateProbe,
    load_snapshot,
)
from repro.recovery.ecc import (  # noqa: F401
    ECC_SCRUB_CYCLES,
    ECCScrubber,
    UncorrectableECCError,
)
from repro.recovery.retry import (  # noqa: F401
    MeshRetryExhaustedError,
    RetryPolicy,
    SendRetrier,
)
from repro.recovery.supervisor import RecoveryReport  # noqa: F401


class RecoveryOptions:
    """Switchboard for one run's recovery features (all off by
    default).  ``restore`` takes a snapshot path or a loaded
    :class:`Snapshot`."""

    def __init__(self, ecc=False, retry=False, retry_policy=None,
                 scrub_cycles=None, checkpoint_path=None,
                 checkpoint_every=1, restore=None, on_round=None):
        self.ecc = ecc
        self.retry = retry
        self.retry_policy = retry_policy
        self.scrub_cycles = scrub_cycles
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.restore = restore
        # extra barrier quiesce hook, called as ``on_round(round_id)``
        # after any checkpoint for that round is written — the job
        # service's cooperative preemption point (repro.serve)
        self.on_round = on_round

    @property
    def active(self):
        return bool(self.ecc or self.retry or self.checkpoint_path
                    or self.restore is not None)

    @property
    def checkpointed(self):
        """Whether this run needs barrier quiesce hooks (and therefore
        the tree engine), like fault runs do."""
        return bool(self.checkpoint_path or self.restore is not None)

    def with_restore(self, restore):
        """A copy with a different restore source (the supervisor
        swaps in the newest checkpoint between attempts)."""
        return RecoveryOptions(
            ecc=self.ecc, retry=self.retry,
            retry_policy=self.retry_policy,
            scrub_cycles=self.scrub_cycles,
            checkpoint_path=self.checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            restore=restore, on_round=self.on_round)

    def __repr__(self):
        return ("RecoveryOptions(ecc=%r, retry=%r, checkpoint=%r, "
                "every=%r, restore=%r)"
                % (self.ecc, self.retry, self.checkpoint_path,
                   self.checkpoint_every, self.restore))
